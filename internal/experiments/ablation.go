package experiments

import (
	"context"
	"fmt"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/montecarlo"
)

// AblationKConfig parameterizes the all-k ablation.
type AblationKConfig struct {
	Mus []float64
	D   float64
	Nu  float64
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultAblationKConfig sweeps every protocol_k at d = 90%.
func DefaultAblationKConfig() AblationKConfig {
	return AblationKConfig{
		Mus: []float64{0.10, 0.20, 0.30},
		D:   0.90,
		Nu:  0.1,
	}
}

// AblationK extends the paper's Figure 3 to every k = 1…C. The paper only
// shows k = 1 and k = C, asserting that they bound the other protocols;
// this ablation verifies the claim for the whole family, one (µ, k) model
// per pool task.
func AblationK(ctx context.Context, pool *engine.Pool, cfg AblationKConfig) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation A2 — protocol_k for k=1…C (d=%g%%, α=δ)", cfg.D*100),
		Columns: []string{"mu", "k", "E(T_S)", "E(T_P)"},
		Note:    "paper (Section VII-C): protocol_1 and protocol_C bound the family",
	}
	type point struct {
		mu float64
		k  int
	}
	var points []point
	for _, mu := range cfg.Mus {
		for k := 1; k <= 7; k++ {
			points = append(points, point{mu, k})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D, p.K, p.Nu = pt.mu, cfg.D, pt.k, cfg.Nu
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmtPercent(pt.mu),
			fmt.Sprintf("%d", pt.k),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// AblationNuConfig parameterizes the ν-sensitivity ablation.
type AblationNuConfig struct {
	Nus []float64
	Mu  float64
	D   float64
	Ks  []int
	// Solver selects the analytic linear-solver backend; the zero value
	// is the paper-exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each cell's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultAblationNuConfig sweeps ν across two orders of magnitude.
func DefaultAblationNuConfig() AblationNuConfig {
	return AblationNuConfig{
		Nus: []float64{0.01, 0.05, 0.1, 0.2, 0.5},
		Mu:  0.30,
		D:   0.90,
		Ks:  []int{2, 4, 7},
	}
}

// AblationNu measures the sensitivity of the results to the Rule 1
// threshold ν, which the paper leaves unspecified. For k = 1 Rule 1 never
// fires, so only k > 1 protocols are swept. Each (k, ν) point runs on its
// own pool task.
func AblationNu(ctx context.Context, pool *engine.Pool, cfg AblationNuConfig) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Ablation A1 — ν sensitivity of Rule 1 (µ=%g%%, d=%g%%, α=δ)", cfg.Mu*100, cfg.D*100),
		Columns: []string{"k", "nu", "E(T_S)", "E(T_P)", "rule1 states"},
		Note:    "ν is not printed in the paper; this reproduction defaults to 0.1",
	}
	type point struct {
		k  int
		nu float64
	}
	var points []point
	for _, k := range cfg.Ks {
		for _, nu := range cfg.Nus {
			points = append(points, point{k, nu})
		}
	}
	if err := gridRows(ctx, pool, t, len(points), func(i int) ([][]string, error) {
		pt := points[i]
		p := baseParams()
		p.Mu, p.D, p.K, p.Nu = cfg.Mu, cfg.D, pt.k, pt.nu
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		a, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		fires, err := countRule1States(p)
		if err != nil {
			return nil, err
		}
		return [][]string{{
			fmt.Sprintf("%d", pt.k),
			fmt.Sprintf("%g", pt.nu),
			fmtFloat(a.ExpectedSafeTime),
			fmtFloat(a.ExpectedPollutedTime),
			fmt.Sprintf("%d", fires),
		}}, nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}

// countRule1States counts the transient safe states in which Rule 1
// fires, via the tabulated relation (2) gains (the gain is ν-independent,
// so the table answers any threshold with one comparison per state; the
// kernel cache makes repeat calls per k cheap).
func countRule1States(p Params) (int, error) {
	g, err := core.ComputeRule1Gains(p)
	if err != nil {
		return 0, err
	}
	return g.CountFires(p.Nu), nil
}

// Params is re-exported for the ablation helpers.
type Params = core.Params

// ValidationConfig parameterizes the Monte-Carlo cross-validation.
type ValidationConfig struct {
	Points   []core.Params
	Runs     int
	MaxSteps int
	Seed     int64
	// Solver selects the analytic linear-solver backend of the closed
	// forms being validated; the zero value is the exact dense path.
	Solver matrix.SolverConfig
	// BuildPool fans each point's matrix construction; nil builds rows
	// serially.
	BuildPool *engine.Pool
}

// DefaultValidationConfig validates three representative points.
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{
		Points: []core.Params{
			{C: 7, Delta: 7, Mu: 0.10, D: 0.50, K: 1, Nu: 0.1},
			{C: 7, Delta: 7, Mu: 0.20, D: 0.80, K: 1, Nu: 0.1},
			{C: 7, Delta: 7, Mu: 0.20, D: 0.80, K: 7, Nu: 0.1},
		},
		Runs:     20000,
		MaxSteps: 1_000_000,
		Seed:     1,
	}
}

// Validation cross-checks the closed forms against direct Monte-Carlo
// simulation of the chain (experiment A3). The trajectory batches fan out
// across the pool; results are identical for every pool width.
func Validation(ctx context.Context, pool *engine.Pool, cfg ValidationConfig) (*Table, error) {
	t := &Table{
		Title: "Validation A3 — closed form vs Monte-Carlo",
		Columns: []string{
			"params", "quantity", "closed form", "monte carlo", "95% CI",
		},
	}
	for _, p := range cfg.Points {
		m, err := core.NewWithSolver(p, cfg.Solver, core.WithBuildPool(cfg.BuildPool))
		if err != nil {
			return nil, err
		}
		exact, err := m.AnalyzeNamed(core.DistributionDelta, 1)
		if err != nil {
			return nil, err
		}
		sim, err := montecarlo.New(m, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sum, err := sim.RunManyBatch(ctx, pool, m.InitialDelta(), cfg.Runs, cfg.MaxSteps)
		if err != nil {
			return nil, err
		}
		rows := []struct {
			name       string
			exact, mc  float64
			confidence float64
		}{
			{"E(T_S)", exact.ExpectedSafeTime, sum.SafeTime.Mean(), sum.SafeTime.ConfidenceInterval95()},
			{"E(T_P)", exact.ExpectedPollutedTime, sum.PollutedTime.Mean(), sum.PollutedTime.ConfidenceInterval95()},
			{"p(safe-merge)", exact.Absorption[core.ClassNameSafeMerge],
				sum.Absorption.Frequency(core.ClassNameSafeMerge), 0},
			{"p(safe-split)", exact.Absorption[core.ClassNameSafeSplit],
				sum.Absorption.Frequency(core.ClassNameSafeSplit), 0},
			{"p(polluted-merge)", exact.Absorption[core.ClassNamePollutedMerge],
				sum.Absorption.Frequency(core.ClassNamePollutedMerge), 0},
		}
		label := fmt.Sprintf("k=%d µ=%g%% d=%g%%", p.K, p.Mu*100, p.D*100)
		for _, r := range rows {
			ci := ""
			if r.confidence > 0 {
				ci = fmt.Sprintf("±%.3f", r.confidence)
			}
			if err := t.AddRow(label, r.name, fmtFloat(r.exact), fmtFloat(r.mc), ci); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
