package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"targetedattacks/internal/core"
)

func TestTableAddRowValidates(t *testing.T) {
	tb := &Table{Title: "t", Columns: []string{"a", "b"}}
	if err := tb.AddRow("1"); err == nil {
		t.Error("short row: want error")
	}
	if err := tb.AddRow("1", "2"); err != nil {
		t.Error(err)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := &Table{Title: "demo", Columns: []string{"x", "value"}, Note: "a note"}
	if err := tb.AddRow("1", "2.5"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "x", "value", "2.5", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "x,value\n1,2.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestFigureValidation(t *testing.T) {
	f := &Figure{Title: "f"}
	if err := f.AddSeries(Series{Name: "bad", X: []float64{1}, Y: nil}); err == nil {
		t.Error("ragged series: want error")
	}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 40, 10); err == nil {
		t.Error("empty figure: want error")
	}
	if err := f.RenderASCII(&buf, 2, 2); err == nil {
		t.Error("tiny plot: want error")
	}
}

func TestFigureRenderAndCSV(t *testing.T) {
	f := &Figure{Title: "curve", XLabel: "m", YLabel: "p", Note: "n"}
	if err := f.AddSeries(Series{Name: "s1", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}); err != nil {
		t.Fatal(err)
	}
	if err := f.AddSeries(Series{Name: "s2", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"curve", "s1", "s2", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := f.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,x,y\n") {
		t.Errorf("CSV header wrong: %q", buf.String())
	}
	if !strings.Contains(buf.String(), "s1,2,4") {
		t.Errorf("CSV missing data: %q", buf.String())
	}
}

func TestFigureConstantSeries(t *testing.T) {
	// Degenerate ranges (all x equal, all y equal) must not divide by 0.
	f := &Figure{Title: "flat"}
	if err := f.AddSeries(Series{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.RenderASCII(&buf, 20, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFigure1Census(t *testing.T) {
	tb, err := Figure1(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(tb.Rows))
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"288", "81", "135"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Figure1 missing %q", want)
		}
	}
	if _, err := Figure1(0, 7); err == nil {
		t.Error("bad C: want error")
	}
}

func TestFigure2(t *testing.T) {
	tb, err := Figure2(context.Background(), nil, Figure2Config{Ks: []int{1, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	if _, err := Figure2(context.Background(), nil, Figure2Config{}); err == nil {
		t.Error("empty Ks: want error")
	}
	// Row-sum deviations must be tiny.
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[3], "0.00e+00") && !strings.Contains(row[3], "e-") {
			t.Errorf("row-sum deviation suspicious: %v", row)
		}
	}
}

func TestFigure3SmallGrid(t *testing.T) {
	cfg := Figure3Config{
		Mus:           []float64{0, 0.2},
		Ds:            []float64{0.9},
		Ks:            []int{1},
		Distributions: []core.InitialDistribution{core.DistributionDelta},
	}
	tb, err := Figure3(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tb.Rows))
	}
	// µ=0 row must read E(T_S)=12, E(T_P)=0.
	if tb.Rows[0][4] != "12.0000" || tb.Rows[0][5] != "0" {
		t.Errorf("µ=0 row = %v", tb.Rows[0])
	}
}

func TestFigure4SmallGrid(t *testing.T) {
	cfg := Figure4Config{
		Mus:           []float64{0},
		Ds:            []float64{0.9},
		Distributions: []core.InitialDistribution{core.DistributionDelta},
	}
	tb, err := Figure4(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][3] != "0.5714" || tb.Rows[0][4] != "0.4286" {
		t.Errorf("µ=0 absorption row = %v, want 0.5714/0.4286", tb.Rows[0])
	}
}

func TestFigure5Small(t *testing.T) {
	cfg := Figure5Config{
		Ns:        []int{50},
		Ds:        []float64{0.9},
		Mu:        0.25,
		MaxEvents: 2000,
		Samples:   10,
	}
	safe, polluted, err := Figure5(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(safe.Series) != 1 || len(polluted.Series) != 1 {
		t.Fatalf("series counts: %d safe, %d polluted", len(safe.Series), len(polluted.Series))
	}
	s := safe.Series[0]
	if s.Y[0] != 1 {
		t.Errorf("safe proportion at m=0 is %v, want 1", s.Y[0])
	}
	if last := s.Y[len(s.Y)-1]; last >= s.Y[0] {
		t.Errorf("safe proportion did not decay: %v → %v", s.Y[0], last)
	}
	if !strings.Contains(s.Name, "L=") {
		t.Errorf("series name %q missing lifetime annotation", s.Name)
	}
	if _, _, err := Figure5(context.Background(), nil, Figure5Config{Ns: []int{1}, Ds: []float64{0.5}, MaxEvents: 0, Samples: 1}); err == nil {
		t.Error("MaxEvents=0: want error")
	}
}

func TestTable1Small(t *testing.T) {
	tb, err := Table1(context.Background(), nil, Table1Config{Mus: []float64{0, 0.2}, Ds: []float64{0.99}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][2] != "12.0000" {
		t.Errorf("µ=0: E(T_S) cell = %q", tb.Rows[0][2])
	}
	// µ=20%, d=0.99 must read ≈ 699.7 (paper Table I).
	if !strings.HasPrefix(tb.Rows[1][3], "699.7") {
		t.Errorf("µ=20%% d=0.99: E(T_P) cell = %q, want 699.7…", tb.Rows[1][3])
	}
}

func TestTable2Small(t *testing.T) {
	tb, err := Table2(context.Background(), nil, DefaultTable2Config())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if len(tb.Columns) != 5 {
		t.Fatalf("columns = %d, want 5", len(tb.Columns))
	}
	if _, err := Table2(context.Background(), nil, Table2Config{Mus: []float64{0}, D: 0.9, Sojourns: 0}); err == nil {
		t.Error("Sojourns=0: want error")
	}
}

func TestAblationK(t *testing.T) {
	tb, err := AblationK(context.Background(), nil, AblationKConfig{Mus: []float64{0.2}, D: 0.9, Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d, want 7 (k=1…7)", len(tb.Rows))
	}
}

func TestAblationNu(t *testing.T) {
	tb, err := AblationNu(context.Background(), nil, AblationNuConfig{Nus: []float64{0.05, 0.5}, Mu: 0.3, D: 0.9, Ks: []int{7}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestValidationSmall(t *testing.T) {
	cfg := ValidationConfig{
		Points:   []core.Params{{C: 7, Delta: 7, Mu: 0.1, D: 0.5, K: 1, Nu: 0.1}},
		Runs:     2000,
		MaxSteps: 100000,
		Seed:     1,
	}
	tb, err := Validation(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tb.Rows))
	}
}

func TestDefaultConfigsMatchPaperShapes(t *testing.T) {
	f3 := DefaultFigure3Config()
	if len(f3.Mus) != 7 || len(f3.Ds) != 4 || len(f3.Ks) != 2 || len(f3.Distributions) != 2 {
		t.Errorf("Figure3 default grid %dx%dx%dx%d, want 7x4x2x2",
			len(f3.Mus), len(f3.Ds), len(f3.Ks), len(f3.Distributions))
	}
	f5 := DefaultFigure5Config()
	if f5.MaxEvents != 100000 || len(f5.Ns) != 2 || len(f5.Ds) != 2 {
		t.Errorf("Figure5 default config %+v does not match the paper axes", f5)
	}
	t1 := DefaultTable1Config()
	if len(t1.Mus)*len(t1.Ds) != 12 {
		t.Errorf("Table1 default grid has %d cells, want 12", len(t1.Mus)*len(t1.Ds))
	}
}

func TestSystemSimSmall(t *testing.T) {
	cfg := SystemSimConfig{
		Mus:              []float64{0, 0.3},
		Ds:               []float64{0.9},
		Events:           2000,
		InitialLabelBits: 2,
		Checkpoints:      4,
		Seed:             1,
	}
	tb, err := SystemSim(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// µ=0 row must report zero pollution.
	if tb.Rows[0][2] != "0" || tb.Rows[0][3] != "0" {
		t.Errorf("µ=0 system row = %v, want zero pollution", tb.Rows[0])
	}
	if _, err := SystemSim(context.Background(), nil, SystemSimConfig{Events: 0, Checkpoints: 1}); err == nil {
		t.Error("Events=0: want error")
	}
}

func TestLookupSmall(t *testing.T) {
	cfg := LookupConfig{
		Mus:              []float64{0, 0.3},
		Ds:               []float64{0.9},
		Events:           1500,
		Trials:           100,
		Redundancy:       3,
		InitialLabelBits: 2,
		Seed:             1,
	}
	tb, err := Lookup(context.Background(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// µ=0: availability must be exactly 1 on both columns.
	if tb.Rows[0][3] != "1.0000" || tb.Rows[0][4] != "1.0000" {
		t.Errorf("µ=0 lookup row = %v, want full availability", tb.Rows[0])
	}
	if _, err := Lookup(context.Background(), nil, LookupConfig{Trials: 0, Redundancy: 1}); err == nil {
		t.Error("Trials=0: want error")
	}
}

func TestFmtHelpers(t *testing.T) {
	if fmtFloat(0) != "0" {
		t.Error("fmtFloat(0)")
	}
	if fmtFloat(12.5) != "12.5000" {
		t.Errorf("fmtFloat(12.5) = %q", fmtFloat(12.5))
	}
	if s := fmtFloat(9.3e9); !strings.Contains(s, "e+09") {
		t.Errorf("fmtFloat(9.3e9) = %q", s)
	}
	if fmtPercent(0.25) != "25%" {
		t.Errorf("fmtPercent(0.25) = %q", fmtPercent(0.25))
	}
}
