package aptchain

import (
	"math"
	"testing"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/matrix"
)

func testParams() Params {
	return Params{N: 6, Theta: 0.5, Phi: 0.4, Rho: 0.3, Detect: 0.7}
}

func build(t *testing.T, p Params, kind string) *Instance {
	t.Helper()
	in, err := New(p, matrix.SolverConfig{Kind: kind}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSpaceIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 7, 12} {
		sp, err := NewSpace(n)
		if err != nil {
			t.Fatal(err)
		}
		if want := (n + 1) * (n + 2) / 2; sp.Size() != want {
			t.Fatalf("n=%d: |Ω| = %d, want %d", n, sp.Size(), want)
		}
		for i := 0; i < sp.Size(); i++ {
			a, b := sp.At(i)
			if a < 0 || b < 0 || a+b > n {
				t.Fatalf("n=%d: At(%d) = (%d,%d) outside Ω", n, i, a, b)
			}
			if got := sp.MustIndex(a, b); got != i {
				t.Fatalf("n=%d: (%d,%d) indexes to %d, enumerated at %d", n, a, b, got, i)
			}
		}
		for _, bad := range [][2]int{{-1, 0}, {0, -1}, {n, 1}, {n + 1, 0}, {0, n + 1}} {
			if _, ok := sp.Index(bad[0], bad[1]); ok {
				t.Errorf("n=%d: Index(%d,%d) accepted a state outside Ω", n, bad[0], bad[1])
			}
		}
		// Exactly the two campaign outcomes are absorbing.
		absorbing := 0
		for i := 0; i < sp.Size(); i++ {
			if !sp.Transient(i) {
				absorbing++
			}
		}
		if absorbing != 2 {
			t.Errorf("n=%d: %d absorbing states, want 2", n, absorbing)
		}
	}
	if _, err := NewSpace(1); err == nil {
		t.Error("NewSpace(1) must be rejected")
	}
}

// TestStochasticity: every built matrix must be a well-formed absorbing
// transition matrix at the contract tolerance (exact probability
// splits, so rounding stays far below 1e-12).
func TestStochasticity(t *testing.T) {
	for _, p := range []Params{
		testParams(),
		{N: 2, Theta: 1, Phi: 1, Rho: 0, Detect: 1},
		{N: 10, Theta: 0.01, Phi: 0.99, Rho: 0.9, Detect: 0.05},
		{N: 25, Theta: 0.7, Phi: 0.2, Rho: 0.5, Detect: 0.6},
	} {
		in := build(t, p, "dense")
		if err := chainmodel.ValidateInstance(in, chainmodel.DefaultStochasticityTol); err != nil {
			t.Errorf("%v: %v", p, err)
		}
	}
}

// TestSparseDenseEquivalence: the iterative sparse backends must agree
// with the dense LU analysis to 1e-9 on every closed form, for both
// initial distributions.
func TestSparseDenseEquivalence(t *testing.T) {
	p := testParams()
	dense := build(t, p, "dense")
	for _, kind := range []string{"bicgstab", "ilu"} {
		sparse := build(t, p, kind)
		for _, dist := range []string{DistFoothold, DistBlitz} {
			want, err := chainmodel.Analyze(dense, dist, 3)
			if err != nil {
				t.Fatal(err)
			}
			got, err := chainmodel.Analyze(sparse, dist, 3)
			if err != nil {
				t.Fatal(err)
			}
			close := func(name string, x, y float64) {
				if math.Abs(x-y) > 1e-9 {
					t.Errorf("%s/%s: %s = %v sparse, %v dense", kind, dist, name, x, y)
				}
			}
			close("E(T_A)", got.TimeInA, want.TimeInA)
			close("E(T_B)", got.TimeInB, want.TimeInB)
			close("hit", got.HitProbability, want.HitProbability)
			for i := range want.SojournsA {
				close("sojourn A", got.SojournsA[i], want.SojournsA[i])
				close("sojourn B", got.SojournsB[i], want.SojournsB[i])
			}
			for class, v := range want.Absorption {
				close("absorption "+class, got.Absorption[class], v)
			}
		}
	}
}

// TestAbsorptionSanity: the two campaign outcomes partition the
// probability mass, the hit probability bounds the compromise
// probability (entrenchment precedes full compromise), and a stronger
// defender evicts more often.
func TestAbsorptionSanity(t *testing.T) {
	p := testParams()
	a, err := chainmodel.Analyze(build(t, p, "dense"), DistFoothold, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := a.Absorption[ClassNameEvicted] + a.Absorption[ClassNameCompromised]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("absorption sums to %v, want 1", sum)
	}
	if a.HitProbability < a.Absorption[ClassNameCompromised]-1e-12 {
		t.Errorf("hit %v < P(compromised) %v: full compromise requires entrenchment",
			a.HitProbability, a.Absorption[ClassNameCompromised])
	}
	if a.HitProbability <= 0 || a.HitProbability >= 1 {
		t.Errorf("hit = %v, want interior for interior parameters", a.HitProbability)
	}
	strong := p
	strong.Detect = 0.99
	sa, err := chainmodel.Analyze(build(t, strong, "dense"), DistFoothold, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sa.Absorption[ClassNameEvicted] <= a.Absorption[ClassNameEvicted] {
		t.Errorf("δ=%.2f evicts %v, δ=%.2f evicts %v: more detection must evict more",
			strong.Detect, sa.Absorption[ClassNameEvicted], p.Detect, a.Absorption[ClassNameEvicted])
	}
	// The blitz wave can only help the attacker.
	blitz, err := chainmodel.Analyze(build(t, p, "dense"), DistBlitz, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blitz.Absorption[ClassNameCompromised] <= a.Absorption[ClassNameCompromised] {
		t.Errorf("blitz compromises %v, foothold %v: mass infiltration must dominate",
			blitz.Absorption[ClassNameCompromised], a.Absorption[ClassNameCompromised])
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	for name, p := range map[string]Params{
		"tiny n": {N: 1, Theta: 0.5, Phi: 0.5, Detect: 0.5},
		"zero θ": {N: 4, Theta: 0, Phi: 0.5, Detect: 0.5},
		"big θ":  {N: 4, Theta: 1.5, Phi: 0.5, Detect: 0.5},
		"zero φ": {N: 4, Theta: 0.5, Phi: 0, Detect: 0.5},
		"ρ = 1":  {N: 4, Theta: 0.5, Phi: 0.5, Rho: 1, Detect: 0.5},
		"zero δ": {N: 4, Theta: 0.5, Phi: 0.5, Detect: 0},
		"NaN θ":  {N: 4, Theta: math.NaN(), Phi: 0.5, Detect: 0.5},
		"neg ρ":  {N: 4, Theta: 0.5, Phi: 0.5, Rho: -0.1, Detect: 0.5},
		"inf δ":  {N: 4, Theta: 0.5, Phi: 0.5, Detect: math.Inf(1)},
		"big δ":  {N: 4, Theta: 0.5, Phi: 0.5, Detect: 1.01},
	} {
		if err := (p).Validate(); err == nil {
			t.Errorf("%s: %v accepted", name, p)
		}
	}
	if _, err := New(Params{N: 1}, matrix.SolverConfig{Kind: "dense"}, nil, nil); err == nil {
		t.Error("New must reject invalid params")
	}
	// A shared space of the wrong geometry is rejected.
	sp, err := NewSpace(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(testParams(), matrix.SolverConfig{Kind: "dense"}, sp, nil); err == nil {
		t.Error("New must reject a mismatched shared space")
	}
	if _, err := build(t, testParams(), "dense").Initial("zeta"); err == nil {
		t.Error("unknown distribution must be rejected")
	}
}
