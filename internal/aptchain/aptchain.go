// Package aptchain is the second model family of the absorbing-chain
// engine: an APT-style multi-stage compromise chain over a networked
// system of n nodes, after the extended stochastic compromise models of
// Xu & Xu (arXiv:1603.08304) and the APT security-evaluation chains of
// Yang et al. (arXiv:1707.03611).
//
// A state (a, b) counts the attacker's footholds — a nodes infiltrated
// but not yet entrenched — and b nodes entrenched (persistent,
// detection-resistant). The remaining h = n − a − b nodes are healthy.
// Each step is an attacker event or a defender event with probability
// 1/2 each, and the acting side probes one uniformly random node:
//
//   - attacker on a healthy node: infiltration succeeds with
//     probability θ — (a, b) → (a+1, b);
//   - attacker on a foothold: escalation to persistence succeeds with
//     probability φ — (a, b) → (a−1, b+1);
//   - defender on a foothold: detection and cleanup succeed with
//     probability δ — (a, b) → (a−1, b);
//   - defender on an entrenched node: the implant's stealth ρ discounts
//     detection, succeeding with probability δ·(1−ρ) —
//     (a, b) → (a, b−1);
//   - otherwise nothing changes.
//
// The campaign ends in one of two absorbing states: (0, 0) — the
// defender eradicated every compromised node and the campaign is over
// ("evicted") — or (0, n) — every node is entrenched and the defender
// has lost ("compromised"). The transient split mirrors the engine's
// A/B vocabulary: subset A ("contained") holds the states with no
// entrenchment yet (b = 0, a ≥ 1), subset B ("escalated") the transient
// states with b ≥ 1. The generic hit probability is therefore the
// probability the attacker ever entrenches a single node.
package aptchain

import (
	"fmt"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/markov"
	"targetedattacks/internal/matrix"
)

// Params are the campaign parameters.
type Params struct {
	// N is the number of nodes.
	N int
	// Theta is the per-probe infiltration success probability θ.
	Theta float64
	// Phi is the per-probe escalation success probability φ.
	Phi float64
	// Rho is the entrenched implants' stealth ρ: detection of an
	// entrenched node succeeds with probability δ·(1−ρ).
	Rho float64
	// Detect is the defender's per-probe detection probability δ.
	Detect float64
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if p.N < 2 {
		return fmt.Errorf("aptchain: N = %d, want N ≥ 2", p.N)
	}
	if !(p.Theta > 0 && p.Theta <= 1) {
		return fmt.Errorf("aptchain: θ = %v outside (0, 1]", p.Theta)
	}
	if !(p.Phi > 0 && p.Phi <= 1) {
		return fmt.Errorf("aptchain: φ = %v outside (0, 1]", p.Phi)
	}
	if !(p.Rho >= 0 && p.Rho < 1) {
		return fmt.Errorf("aptchain: ρ = %v outside [0, 1)", p.Rho)
	}
	if !(p.Detect > 0 && p.Detect <= 1) {
		return fmt.Errorf("aptchain: δ = %v outside (0, 1]", p.Detect)
	}
	return nil
}

// String renders the parameters compactly.
func (p Params) String() string {
	return fmt.Sprintf("apt(n=%d, θ=%.3f, φ=%.3f, ρ=%.3f, δ=%.3f)", p.N, p.Theta, p.Phi, p.Rho, p.Detect)
}

// Absorbing class names as used in Analysis.Absorption.
const (
	// ClassNameEvicted is full recovery: the defender cleaned the last
	// compromised node and the campaign is over.
	ClassNameEvicted = "evicted"
	// ClassNameCompromised is full compromise: every node entrenched.
	ClassNameCompromised = "compromised"
)

// Named initial distributions.
const (
	// DistFoothold (the default) starts from (1, 0): a single
	// infiltrated node, the classic spear-phishing entry.
	DistFoothold = "foothold"
	// DistBlitz starts from (n, 0): every node infiltrated at once, no
	// entrenchment yet — a worst-case mass-infiltration wave.
	DistBlitz = "blitz"
)

// Space enumerates the triangular state space
// Ω(n) = {(a, b) : a, b ≥ 0, a + b ≤ n}, b-major: index
// (a, b) ↦ b(n+1) − b(b−1)/2 + a. |Ω| = (n+1)(n+2)/2. Immutable, so
// one enumeration backs every cell of a sweep group at fixed n.
type Space struct {
	n int
	// a, b decode an index back to its state in O(1).
	a, b []int32
}

// NewSpace enumerates Ω(n).
func NewSpace(n int) (*Space, error) {
	if n < 2 {
		return nil, fmt.Errorf("aptchain: N = %d, want N ≥ 2", n)
	}
	size := (n + 1) * (n + 2) / 2
	sp := &Space{n: n, a: make([]int32, size), b: make([]int32, size)}
	i := 0
	for b := 0; b <= n; b++ {
		for a := 0; a <= n-b; a++ {
			sp.a[i] = int32(a)
			sp.b[i] = int32(b)
			i++
		}
	}
	return sp, nil
}

// N returns the node count.
func (sp *Space) N() int { return sp.n }

// Size returns |Ω| = (n+1)(n+2)/2.
func (sp *Space) Size() int { return len(sp.a) }

// Index returns the index of (a, b), reporting whether the state lies
// in Ω.
func (sp *Space) Index(a, b int) (int, bool) {
	if a < 0 || b < 0 || a+b > sp.n {
		return 0, false
	}
	return b*(sp.n+1) - b*(b-1)/2 + a, true
}

// MustIndex is Index for states known to lie in Ω.
func (sp *Space) MustIndex(a, b int) int {
	i, ok := sp.Index(a, b)
	if !ok {
		panic(fmt.Sprintf("aptchain: state (%d,%d) outside Ω(n=%d)", a, b, sp.n))
	}
	return i
}

// At decodes index i back to its state (a, b).
func (sp *Space) At(i int) (a, b int) {
	return int(sp.a[i]), int(sp.b[i])
}

// Transient reports whether state i is transient: everything except the
// two absorbing campaign outcomes (0, 0) and (0, n).
func (sp *Space) Transient(i int) bool {
	a, b := sp.At(i)
	return !(a == 0 && (b == 0 || b == sp.n))
}

// Emitter emits the sparse transition rows of the campaign chain; it
// implements chainmodel.RowEmitter (EmitRow is safe for concurrent use
// on distinct rows — the Space is immutable and Params a value).
type Emitter struct {
	P  Params
	Sp *Space
}

// NumStates implements chainmodel.RowEmitter.
func (e Emitter) NumStates() int { return e.Sp.Size() }

// Transient implements chainmodel.RowEmitter.
func (e Emitter) Transient(i int) bool { return e.Sp.Transient(i) }

// EmitRow implements chainmodel.RowEmitter: the four move probabilities
// of state (a, b) plus the self-loop remainder. The per-branch node
// fractions keep the row sum ≤ 1 for any parameters — the attacker
// branches spend at most (h+a)/n of their half-step, the defender
// branches at most (a+b)/n of theirs.
func (e Emitter) EmitRow(rb *matrix.RowBuilder, i int) error {
	a, b := e.Sp.At(i)
	n := float64(e.Sp.n)
	h := e.Sp.n - a - b
	pInf := 0.5 * float64(h) / n * e.P.Theta
	pEsc := 0.5 * float64(a) / n * e.P.Phi
	pDetA := 0.5 * float64(a) / n * e.P.Detect
	pDetB := 0.5 * float64(b) / n * e.P.Detect * (1 - e.P.Rho)
	stay := 1 - pInf - pEsc - pDetA - pDetB
	if stay < 0 {
		// The exact sum is ≤ 1; only float round-off can push past it.
		if stay < -1e-9 {
			return fmt.Errorf("aptchain: state (%d,%d): moves sum to %v > 1", a, b, 1-stay)
		}
		stay = 0
	}
	add := func(a2, b2 int, w float64) error {
		if w == 0 {
			return nil
		}
		return rb.Add(e.Sp.MustIndex(a2, b2), w)
	}
	if err := add(a+1, b, pInf); err != nil {
		return err
	}
	if err := add(a-1, b+1, pEsc); err != nil {
		return err
	}
	if err := add(a-1, b, pDetA); err != nil {
		return err
	}
	if err := add(a, b-1, pDetB); err != nil {
		return err
	}
	return add(a, b, stay)
}

// Instance is one built campaign chain; it implements
// chainmodel.Instance.
type Instance struct {
	params Params
	space  *Space
	m      *matrix.CSR
	solver matrix.Solver
}

// New validates p and builds the campaign chain: its state space (sp
// when non-nil and matching, else a fresh enumeration), the exact
// transition matrix (row construction fanned across buildPool; output
// bit-identical for any width), and the linear-solver backend of its
// analyses.
func New(p Params, sc matrix.SolverConfig, sp *Space, buildPool *engine.Pool) (*Instance, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	solver, err := sc.Build()
	if err != nil {
		return nil, fmt.Errorf("aptchain: %w", err)
	}
	if sp != nil {
		if sp.n != p.N {
			return nil, fmt.Errorf("aptchain: shared space Ω(n=%d) does not match params (n=%d)", sp.n, p.N)
		}
	} else if sp, err = NewSpace(p.N); err != nil {
		return nil, err
	}
	m, err := chainmodel.BuildMatrix(Emitter{P: p, Sp: sp}, buildPool)
	if err != nil {
		return nil, fmt.Errorf("aptchain: %w", err)
	}
	return &Instance{params: p, space: sp, m: m, solver: solver}, nil
}

// Params returns the campaign parameters.
func (in *Instance) Params() Params { return in.params }

// Space returns the state space.
func (in *Instance) Space() *Space { return in.space }

// NumStates implements chainmodel.Instance.
func (in *Instance) NumStates() int { return in.space.Size() }

// NumTransient implements chainmodel.Instance: everything but the two
// campaign outcomes.
func (in *Instance) NumTransient() int { return in.space.Size() - 2 }

// TransientState implements chainmodel.Instance.
func (in *Instance) TransientState(i int) bool { return in.space.Transient(i) }

// Matrix implements chainmodel.Instance.
func (in *Instance) Matrix() *matrix.CSR { return in.m }

// CleanClasses implements chainmodel.Instance: only eviction is
// reachable without the attacker ever entrenching a node, so the
// generic HitProbability is P(ever entrenched).
func (in *Instance) CleanClasses() []string { return []string{ClassNameEvicted} }

// Initial materializes a named initial distribution over Ω.
func (in *Instance) Initial(dist string) ([]float64, error) {
	alpha := make([]float64, in.space.Size())
	switch dist {
	case DistFoothold:
		alpha[in.space.MustIndex(1, 0)] = 1
	case DistBlitz:
		alpha[in.space.MustIndex(in.space.n, 0)] = 1
	default:
		return nil, fmt.Errorf("aptchain: unknown distribution %q (want %q or %q)", dist, DistFoothold, DistBlitz)
	}
	return alpha, nil
}

// Chain implements chainmodel.Instance: subset A is the contained
// states (b = 0, a ≥ 1), subset B the escalated transient states
// (b ≥ 1), and the two campaign outcomes are the absorbing classes.
func (in *Instance) Chain(dist string) (*markov.Chain, error) {
	alpha, err := in.Initial(dist)
	if err != nil {
		return nil, err
	}
	sp := in.space
	var subsetA, subsetB []int
	for i := 0; i < sp.Size(); i++ {
		a, b := sp.At(i)
		switch {
		case !sp.Transient(i):
		case b == 0 && a >= 1:
			subsetA = append(subsetA, i)
		default:
			subsetB = append(subsetB, i)
		}
	}
	return markov.NewChain(markov.Spec{
		Full:    in.m,
		Alpha:   alpha,
		SubsetA: subsetA,
		SubsetB: subsetB,
		AbsorbingClasses: map[string][]int{
			ClassNameEvicted:     {sp.MustIndex(0, 0)},
			ClassNameCompromised: {sp.MustIndex(0, sp.n)},
		},
		ClassOrder: []string{ClassNameEvicted, ClassNameCompromised},
		Solver:     in.solver,
	})
}
