package aptchain

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
)

// FamilyName is the APT campaign chain's registry name.
const FamilyName = "apt-compromise"

func init() { chainmodel.Register(Family{}) }

// Family is the APT campaign chain's implementation of the chainmodel
// interface: cells are Params, groups share one triangular state space
// per node count n, every parameter enters the matrix (so dedup only
// collapses exact duplicates), and warm-start lanes run along the
// stealth axis ρ at fixed (n, θ, φ, δ) — neighboring stealth levels
// perturb only the entrenched-detection rates, so their solution
// vectors seed each other well.
type Family struct{}

// Name implements chainmodel.Family.
func (Family) Name() string { return FamilyName }

// Description implements chainmodel.Family.
func (Family) Description() string {
	return "APT multi-stage compromise campaign over n nodes: infiltration θ, escalation φ, detection δ, stealth ρ; absorbing at full recovery and full compromise"
}

// Dists implements chainmodel.Family.
func (Family) Dists() []string { return []string{DistFoothold, DistBlitz} }

// ParseDist implements chainmodel.Family.
func (Family) ParseDist(s string) (string, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", DistFoothold:
		return DistFoothold, nil
	case DistBlitz:
		return DistBlitz, nil
	default:
		return "", fmt.Errorf("unknown distribution %q (want %q or %q)", s, DistFoothold, DistBlitz)
	}
}

// cellFields is the family's slice of an analyze request body.
type cellFields struct {
	N      int     `json:"n"`
	Theta  float64 `json:"theta"`
	Phi    float64 `json:"phi"`
	Rho    float64 `json:"rho"`
	Detect float64 `json:"detect"`
}

// ParseCell implements chainmodel.Family.
func (Family) ParseCell(raw json.RawMessage) (chainmodel.Cell, error) {
	var f cellFields
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("decoding cell: %w", err)
	}
	p := Params{N: f.N, Theta: f.Theta, Phi: f.Phi, Rho: f.Rho, Detect: f.Detect}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// planFields is the family's slice of a sweep request body.
type planFields struct {
	N      string `json:"n"`
	Theta  string `json:"theta"`
	Phi    string `json:"phi"`
	Rho    string `json:"rho"`
	Detect string `json:"detect"`
}

// ParsePlan implements chainmodel.Family: the cross product of the five
// axes in canonical order — n outermost (the group axis), then θ, φ, δ,
// and ρ innermost, so warm-start lanes walk the stealth axis in small
// steps. The ρ axis defaults to 0 (no stealth); every other axis is
// required.
func (Family) ParsePlan(raw json.RawMessage) ([]chainmodel.Cell, error) {
	var f planFields
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("decoding plan: %w", err)
	}
	axisInts := func(name, expr string) ([]int, error) {
		if expr == "" {
			return nil, fmt.Errorf("axis %s: axis is required", name)
		}
		vs, err := chainmodel.ParseInts(expr)
		if err != nil {
			return nil, fmt.Errorf("axis %s: %w", name, err)
		}
		return vs, nil
	}
	axisFloats := func(name, expr string) ([]float64, error) {
		if expr == "" {
			return nil, fmt.Errorf("axis %s: axis is required", name)
		}
		vs, err := chainmodel.ParseFloats(expr)
		if err != nil {
			return nil, fmt.Errorf("axis %s: %w", name, err)
		}
		return vs, nil
	}
	ns, err := axisInts("n", f.N)
	if err != nil {
		return nil, err
	}
	thetas, err := axisFloats("theta", f.Theta)
	if err != nil {
		return nil, err
	}
	phis, err := axisFloats("phi", f.Phi)
	if err != nil {
		return nil, err
	}
	detects, err := axisFloats("detect", f.Detect)
	if err != nil {
		return nil, err
	}
	rhos := []float64{0}
	if f.Rho != "" {
		if rhos, err = chainmodel.ParseFloats(f.Rho); err != nil {
			return nil, fmt.Errorf("axis rho: %w", err)
		}
	}
	size := 1
	for _, n := range []int{len(ns), len(thetas), len(phis), len(detects), len(rhos)} {
		if size > math.MaxInt/n {
			return nil, fmt.Errorf("axis product overflows the grid size")
		}
		size *= n
	}
	cells := make([]chainmodel.Cell, 0, size)
	for _, n := range ns {
		for _, theta := range thetas {
			for _, phi := range phis {
				for _, detect := range detects {
					for _, rho := range rhos {
						p := Params{N: n, Theta: theta, Phi: phi, Rho: rho, Detect: detect}
						if err := p.Validate(); err != nil {
							return nil, fmt.Errorf("cell %v: %w", p, err)
						}
						cells = append(cells, p)
					}
				}
			}
		}
	}
	return cells, nil
}

// CellDTO implements chainmodel.Family.
func (Family) CellDTO(cell chainmodel.Cell) any {
	p := cell.(Params)
	return cellFields{N: p.N, Theta: p.Theta, Phi: p.Phi, Rho: p.Rho, Detect: p.Detect}
}

// CellKey implements chainmodel.Family.
func (Family) CellKey(cell chainmodel.Cell) string {
	p := cell.(Params)
	return fmt.Sprintf("n=%d|theta=%s|phi=%s|rho=%s|detect=%s",
		p.N,
		strconv.FormatFloat(p.Theta, 'x', -1, 64),
		strconv.FormatFloat(p.Phi, 'x', -1, 64),
		strconv.FormatFloat(p.Rho, 'x', -1, 64),
		strconv.FormatFloat(p.Detect, 'x', -1, 64))
}

// StateCount implements chainmodel.Family: |Ω| = (n+1)(n+2)/2,
// saturating instead of overflowing.
func (Family) StateCount(cell chainmodel.Cell) (int, error) {
	p := cell.(Params)
	if p.N >= 1<<30 {
		return math.MaxInt, nil
	}
	return (p.N + 1) * (p.N + 2) / 2, nil
}

// GroupKey implements chainmodel.Family: the node count pins the state
// space.
func (Family) GroupKey(cell chainmodel.Cell) any { return cell.(Params).N }

// NewShared implements chainmodel.Family: one triangular space per n.
func (Family) NewShared(cells []chainmodel.Cell) (any, error) {
	if len(cells) == 0 {
		return nil, fmt.Errorf("empty group")
	}
	return NewSpace(cells[0].(Params).N)
}

// Signature implements chainmodel.Family: every parameter enters the
// transition matrix directly, so only exact duplicates dedup.
func (Family) Signature(_ any, cell chainmodel.Cell) (any, error) {
	return cell.(Params), nil
}

// laneKey is the warm-start lane identity: within a lane only the
// stealth ρ varies.
type laneKey struct {
	n                  int
	theta, phi, detect float64
}

// LaneKey implements chainmodel.Family.
func (Family) LaneKey(cell chainmodel.Cell) any {
	p := cell.(Params)
	return laneKey{n: p.N, theta: p.Theta, phi: p.Phi, detect: p.Detect}
}

// Build implements chainmodel.Family.
func (Family) Build(shared any, cell chainmodel.Cell, sc matrix.SolverConfig, buildPool *engine.Pool) (chainmodel.Instance, error) {
	var sp *Space
	if shared != nil {
		sp = shared.(*Space)
	}
	return New(cell.(Params), sc, sp, buildPool)
}
