package aptchain

import (
	"math"
	"testing"

	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/matrix"
)

// fuzzUnit folds an arbitrary float64 (including NaN and ±Inf) into
// [0, 1), deterministically.
func fuzzUnit(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	x = math.Abs(math.Mod(x, 1))
	if x >= 1 { // Mod can return exactly 1 only through rounding; clamp.
		x = 0
	}
	return x
}

// FuzzAPTRowEmitter drives the campaign-chain row emitter over arbitrary
// (n, θ, φ, ρ, δ) folded into the model's validity bounds: every build
// must succeed, the matrix must be a well-formed absorbing transition
// matrix at the contract tolerance, and the triangular state space must
// round-trip through its index bijectively. CI runs a short -fuzz smoke
// on top of the committed seeds.
func FuzzAPTRowEmitter(f *testing.F) {
	f.Add(uint8(6), 0.5, 0.4, 0.3, 0.7)
	f.Add(uint8(2), 1.0, 1.0, 0.0, 1.0)
	f.Add(uint8(20), 0.01, 0.99, 0.9, 0.05)
	f.Add(uint8(11), 0.7, 0.2, 0.5, 0.6)
	f.Fuzz(func(t *testing.T, n uint8, theta, phi, rho, detect float64) {
		p := Params{
			N:      2 + int(n%24),
			Theta:  0.001 + 0.999*fuzzUnit(theta),
			Phi:    0.001 + 0.999*fuzzUnit(phi),
			Rho:    0.999 * fuzzUnit(rho),
			Detect: 0.001 + 0.999*fuzzUnit(detect),
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("folded params %v invalid: %v", p, err)
		}
		in, err := New(p, matrix.SolverConfig{Kind: "dense"}, nil, nil)
		if err != nil {
			t.Fatalf("build %v: %v", p, err)
		}
		if err := chainmodel.ValidateInstance(in, chainmodel.DefaultStochasticityTol); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		sp := in.Space()
		for i := 0; i < sp.Size(); i++ {
			a, b := sp.At(i)
			if got := sp.MustIndex(a, b); got != i {
				t.Fatalf("%v: (%d,%d) indexes to %d, enumerated at %d", p, a, b, got, i)
			}
		}
	})
}
