package adversary

import (
	"testing"

	"targetedattacks/internal/core"
)

func newAdversary(t *testing.T, p core.Params) *Adversary {
	t.Helper()
	a, err := New(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func params(k int) core.Params {
	return core.Params{C: 7, Delta: 7, Mu: 0.3, D: 0.9, K: k, Nu: 0.1}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(core.Params{}, 1); err == nil {
		t.Error("invalid params: want error")
	}
	a := newAdversary(t, params(1))
	if a.Params().C != 7 {
		t.Error("Params accessor broken")
	}
}

func TestPolluted(t *testing.T) {
	v := ClusterView{CoreSize: 7, MaliciousCore: 2}
	if v.Polluted() {
		t.Error("x=2 ≤ c=2 must be safe")
	}
	v.MaliciousCore = 3
	if !v.Polluted() {
		t.Error("x=3 > c=2 must be polluted")
	}
}

func TestRule2DiscardDecisions(t *testing.T) {
	a := newAdversary(t, params(1))
	tests := []struct {
		name      string
		view      ClusterView
		malicious bool
		want      bool
	}{
		{
			"safe cluster accepts honest",
			ClusterView{SpareSize: 3, SpareMax: 7, CoreSize: 7, MaliciousCore: 1},
			false, false,
		},
		{
			"polluted discards honest when s>1",
			ClusterView{SpareSize: 3, SpareMax: 7, CoreSize: 7, MaliciousCore: 4},
			false, true,
		},
		{
			"polluted accepts honest at s=1",
			ClusterView{SpareSize: 1, SpareMax: 7, CoreSize: 7, MaliciousCore: 4},
			false, false,
		},
		{
			"polluted accepts malicious below split boundary",
			ClusterView{SpareSize: 3, SpareMax: 7, CoreSize: 7, MaliciousCore: 4},
			true, false,
		},
		{
			"polluted discards everyone at s=∆−1 (honest)",
			ClusterView{SpareSize: 6, SpareMax: 7, CoreSize: 7, MaliciousCore: 4},
			false, true,
		},
		{
			"polluted discards everyone at s=∆−1 (malicious)",
			ClusterView{SpareSize: 6, SpareMax: 7, CoreSize: 7, MaliciousCore: 4},
			true, true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.ShouldDiscardJoin(tt.view, tt.malicious); got != tt.want {
				t.Errorf("ShouldDiscardJoin = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRule1NeverForK1(t *testing.T) {
	a := newAdversary(t, params(1))
	for s := 2; s < 7; s++ {
		for x := 1; x <= 2; x++ {
			for y := 0; y <= s; y++ {
				v := ClusterView{SpareSize: s, SpareMax: 7, CoreSize: 7, MaliciousCore: x, MaliciousSpare: y}
				fires, err := a.ShouldTriggerVoluntaryLeave(v)
				if err != nil {
					t.Fatal(err)
				}
				if fires {
					t.Errorf("Rule 1 fired for k=1 at (%d,%d,%d)", s, x, y)
				}
			}
		}
	}
}

func TestRule1GuardConditions(t *testing.T) {
	a := newAdversary(t, params(7))
	// Polluted cluster: never leave voluntarily.
	v := ClusterView{SpareSize: 5, SpareMax: 7, CoreSize: 7, MaliciousCore: 5, MaliciousSpare: 5}
	if fires, err := a.ShouldTriggerVoluntaryLeave(v); err != nil || fires {
		t.Errorf("polluted: fires=%v err=%v, want false", fires, err)
	}
	// s = 1: merging risk, never leave.
	v = ClusterView{SpareSize: 1, SpareMax: 7, CoreSize: 7, MaliciousCore: 1, MaliciousSpare: 1}
	if fires, err := a.ShouldTriggerVoluntaryLeave(v); err != nil || fires {
		t.Errorf("s=1: fires=%v err=%v, want false", fires, err)
	}
	// No malicious core member: nothing to leave.
	v = ClusterView{SpareSize: 4, SpareMax: 7, CoreSize: 7, MaliciousCore: 0, MaliciousSpare: 3}
	if fires, err := a.ShouldTriggerVoluntaryLeave(v); err != nil || fires {
		t.Errorf("x=0: fires=%v err=%v, want false", fires, err)
	}
}

func TestRule1MatchesCoreRelation(t *testing.T) {
	p := params(7)
	p.Nu = 0.5
	a := newAdversary(t, p)
	for s := 2; s < 7; s++ {
		for x := 1; x <= 2; x++ {
			for y := 0; y <= s; y++ {
				v := ClusterView{SpareSize: s, SpareMax: 7, CoreSize: 7, MaliciousCore: x, MaliciousSpare: y}
				got, err := a.ShouldTriggerVoluntaryLeave(v)
				if err != nil {
					t.Fatal(err)
				}
				want, err := core.Rule1Holds(p, s, x, y)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("(%d,%d,%d): adversary=%v core=%v", s, x, y, got, want)
				}
			}
		}
	}
}

func TestCompliesWithLeave(t *testing.T) {
	a := newAdversary(t, params(1))
	if a.CompliesWithLeave(false) {
		t.Error("unexpired malicious peer must refuse")
	}
	if !a.CompliesWithLeave(true) {
		t.Error("expired malicious peer must comply (Property 1)")
	}
}

func TestSampleSurvival(t *testing.T) {
	p := params(1)
	p.D = 0
	a := newAdversary(t, p)
	if a.SampleSurvival(1) {
		t.Error("d=0 with one id must never survive")
	}
	if !a.SampleSurvival(0) {
		t.Error("zero ids always 'survive'")
	}
	p.D = 0.9
	a = newAdversary(t, p)
	survived := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		if a.SampleSurvival(2) {
			survived++
		}
	}
	// d² = 0.81; allow ±3%.
	if frac := float64(survived) / trials; frac < 0.78 || frac > 0.84 {
		t.Errorf("survival fraction %v, want ≈0.81", frac)
	}
}

func TestBiasMaintenance(t *testing.T) {
	a := newAdversary(t, params(1))
	v := ClusterView{MaliciousSpare: 2}
	if a.BiasMaintenance(v) != PromoteMaliciousSpare {
		t.Error("with malicious spares, promote one")
	}
	v.MaliciousSpare = 0
	if a.BiasMaintenance(v) != PromoteHonestSpare {
		t.Error("without malicious spares, concede honest")
	}
}

func TestTopologyPreferences(t *testing.T) {
	a := newAdversary(t, params(1))
	safe := ClusterView{CoreSize: 7, MaliciousCore: 1}
	polluted := ClusterView{CoreSize: 7, MaliciousCore: 4}
	if !a.WantsSplit(safe) || a.WantsSplit(polluted) {
		t.Error("split preference wrong")
	}
	if !a.WantsMerge(safe) || a.WantsMerge(polluted) {
		t.Error("merge preference wrong")
	}
}
