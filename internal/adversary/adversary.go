// Package adversary implements the targeted-attack strategy of Section V
// of the DSN 2011 paper for the system simulator: a strong adversary that
// controls every malicious peer, colludes across them, and decides —
// given its view of a cluster — whether to discard join events (Rule 2),
// whether to trigger a voluntary core departure (Rule 1, relation (2)),
// how to bias the core maintenance of polluted clusters, and whether a
// malicious peer complies with a leave event at all (only when Property 1
// forces it).
package adversary

import (
	"fmt"
	"math/rand"

	"targetedattacks/internal/core"
)

// ClusterView is the adversary's knowledge of one cluster. The adversary
// is strong: it sees the exact composition (its own peers report it).
type ClusterView struct {
	// SpareSize is s, the current spare-set size.
	SpareSize int
	// SpareMax is ∆.
	SpareMax int
	// CoreSize is C.
	CoreSize int
	// MaliciousCore is x.
	MaliciousCore int
	// MaliciousSpare is y.
	MaliciousSpare int
}

// Polluted reports whether the adversary holds strictly more than the
// quorum c = ⌊(C−1)/3⌋ of the core.
func (v ClusterView) Polluted() bool {
	return v.MaliciousCore > (v.CoreSize-1)/3
}

// Strategy selects the adversary's playbook. The zero value is the
// paper's full Section V strategy, so existing call sites keep their
// behavior.
type Strategy int

// Playbooks.
const (
	// StrategyPaper is the full targeted attack of Section V: Rule 2
	// join discards, Rule 1 voluntary leaves, refused leaves, biased
	// maintenance and split/merge vetoes in polluted clusters.
	StrategyPaper Strategy = iota
	// StrategyNoRule1 plays the paper strategy without Rule 1 voluntary
	// leaves (the ablation of Section V-C).
	StrategyNoRule1
	// StrategyPassive fields malicious peers that follow the protocol:
	// they comply with leaves, never discard joins, and leave the
	// maintenance honest — the Byzantine-colored baseline.
	StrategyPassive
)

// String renders the strategy's wire name.
func (s Strategy) String() string {
	switch s {
	case StrategyPaper:
		return "paper"
	case StrategyNoRule1:
		return "norule1"
	case StrategyPassive:
		return "passive"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy inverts Strategy.String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "paper":
		return StrategyPaper, nil
	case "norule1":
		return StrategyNoRule1, nil
	case "passive":
		return StrategyPassive, nil
	}
	return 0, fmt.Errorf("adversary: unknown strategy %q (want paper, norule1 or passive)", name)
}

// Adversary encodes the strategy parameters.
type Adversary struct {
	params   core.Params
	rng      *rand.Rand
	strategy Strategy
}

// New builds an adversary playing against protocol_k with the model
// parameters p (µ is the population fraction; K and Nu drive Rule 1),
// using the paper's full strategy.
func New(p core.Params, seed int64) (*Adversary, error) {
	return NewStrategic(p, seed, StrategyPaper)
}

// NewStrategic builds an adversary playing the given strategy.
func NewStrategic(p core.Params, seed int64, strategy Strategy) (*Adversary, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	switch strategy {
	case StrategyPaper, StrategyNoRule1, StrategyPassive:
	default:
		return nil, fmt.Errorf("adversary: unknown strategy %d", strategy)
	}
	return &Adversary{params: p, rng: rand.New(rand.NewSource(seed)), strategy: strategy}, nil
}

// Params returns the strategy parameters.
func (a *Adversary) Params() core.Params { return a.params }

// Strategy returns the playbook in force.
func (a *Adversary) Strategy() Strategy { return a.strategy }

// ShouldDiscardJoin implements Rule 2: in a polluted cluster the
// adversary discards the join event of q when (q is honest and s > 1) or
// (s = ∆−1). Safe clusters are not under adversary control, so joins
// proceed.
func (a *Adversary) ShouldDiscardJoin(v ClusterView, joinerMalicious bool) bool {
	if a.strategy == StrategyPassive || !v.Polluted() {
		return false
	}
	if v.SpareSize == v.SpareMax-1 {
		return true
	}
	return !joinerMalicious && v.SpareSize > 1
}

// ShouldTriggerVoluntaryLeave implements Rule 1 (relation (2)): whether
// the colluding malicious core members force one of their own (the one
// expiring soonest) out to re-roll the maintenance lottery. The paper
// restricts the rule to safe clusters (0 < x ≤ c) with spare sets large
// enough to avoid a merge.
func (a *Adversary) ShouldTriggerVoluntaryLeave(v ClusterView) (bool, error) {
	if a.strategy != StrategyPaper {
		return false, nil
	}
	if v.MaliciousCore < 1 || v.Polluted() || v.SpareSize <= 1 {
		return false, nil
	}
	return core.Rule1Holds(a.params, v.SpareSize, v.MaliciousCore, v.MaliciousSpare)
}

// CompliesWithLeave decides whether a malicious peer obeys a leave event
// when its identifier has not expired: it never does (Section V-A); the
// adversary only loses peers to Property 1 or to Rule 1.
func (a *Adversary) CompliesWithLeave(expired bool) bool {
	if a.strategy == StrategyPassive {
		return true
	}
	return expired
}

// SampleSurvival draws the Bernoulli(d^count) survival used by the
// model-fidelity simulation mode: true means every one of count
// identifiers survived the time unit, so the targeted malicious peer
// refuses to leave.
func (a *Adversary) SampleSurvival(count int) bool {
	if count <= 0 {
		return true
	}
	p := 1.0
	for i := 0; i < count; i++ {
		p *= a.params.D
	}
	return a.rng.Float64() < p
}

// ReplacementChoice is the adversary's maintenance bias in a polluted
// cluster (Section V-A): replace the departed core member with a valid
// malicious spare when one exists, otherwise concede an honest spare
// (hiding the pollution from the cluster's neighborhood).
type ReplacementChoice int

// Possible maintenance choices.
const (
	// PromoteMaliciousSpare moves one of the adversary's spares to core.
	PromoteMaliciousSpare ReplacementChoice = iota
	// PromoteHonestSpare concedes an honest promotion.
	PromoteHonestSpare
)

// ControlsMaintenance reports whether the adversary exploits its quorum
// in a polluted cluster's maintenance round. A passive adversary does
// not: the maintenance stays the honest randomized protocol_k.
func (a *Adversary) ControlsMaintenance() bool {
	return a.strategy != StrategyPassive
}

// BiasMaintenance picks the replacement in an adversary-controlled
// maintenance round.
func (a *Adversary) BiasMaintenance(v ClusterView) ReplacementChoice {
	if v.MaliciousSpare > 0 {
		return PromoteMaliciousSpare
	}
	return PromoteHonestSpare
}

// WantsSplit reports whether the adversary would let a polluted cluster
// split: never (Section V-B) — a split cannot increase the identifier
// space it controls.
func (a *Adversary) WantsSplit(v ClusterView) bool {
	return a.strategy == StrategyPassive || !v.Polluted()
}

// WantsMerge reports whether the adversary would let a polluted cluster
// merge: never voluntarily (the merge demotes its core members to
// spares), though Property 1 can force it.
func (a *Adversary) WantsMerge(v ClusterView) bool {
	return a.strategy == StrategyPassive || !v.Polluted()
}
