// Package consensus implements the Byzantine-tolerant agreement substrate
// that Section IV of the DSN 2011 paper assumes inside each cluster core:
// the randomized choices of the leave-maintenance and split operations
// are "handled through a Byzantine-tolerant consensus run among core
// members".
//
// The implementation is an authenticated synchronous protocol:
//
//   - Broadcast is Dolev-Strong broadcast with signature chains: the
//     sender signs its value; over f+1 rounds every honest relay that
//     extracts a value with r distinct valid signatures appends its own
//     and forwards. With signatures it tolerates any number of Byzantine
//     relays; an equivocating sender yields the default value ⊥ at every
//     honest node, consistently.
//
//   - AgreeOnSeed runs one broadcast per core member carrying a random
//     contribution and hashes the agreed vector into a shared 256-bit
//     seed. All honest members obtain the same seed; with at least one
//     honest contribution the adversary cannot fix it in advance
//     (synchronous, non-rushing model).
//
//   - SelectIndices expands a seed into the uniform random k-subset used
//     to rebuild core/spare sets (protocol_k maintenance and split).
package consensus

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"targetedattacks/internal/identity"
)

// Behavior selects the failure mode of a Byzantine member.
type Behavior int

// Byzantine behaviors exercised by the simulator and tests.
const (
	// Honest follows the protocol.
	Honest Behavior = iota
	// Silent sends nothing.
	Silent
	// Equivocate signs and sends conflicting values to different peers
	// (sender role); as a relay it behaves like Silent.
	Equivocate
	// DropRelay participates as a sender but never relays others' values.
	DropRelay
)

// Member is one core-set participant in an agreement instance.
type Member struct {
	// Index is the member's position in the core set.
	Index int
	// Identity signs protocol messages.
	Identity *identity.Identity
	// Behavior is Honest for correct members.
	Behavior Behavior
}

// signedValue is a value with its accumulated signature chain.
type signedValue struct {
	value   []byte
	signers []int    // distinct member indices, sender first
	sigs    [][]byte // sigs[i] by signers[i] over message(value, sender)
}

// message serializes the signed payload: sender index plus value.
func message(senderIndex int, value []byte) []byte {
	var buf bytes.Buffer
	var idx [8]byte
	binary.BigEndian.PutUint64(idx[:], uint64(senderIndex))
	buf.Write(idx[:])
	buf.Write(value)
	return buf.Bytes()
}

// Default is the ⊥ value every honest node outputs when the sender is
// detected faulty.
var Default = []byte{}

// Broadcast runs Dolev-Strong broadcast from members[senderIdx] with the
// given value among all members, tolerating up to f Byzantine members
// (the protocol runs f+1 rounds). It returns the decided value at each
// honest member, indexed by member position; Byzantine members' outputs
// are not defined and left nil.
func Broadcast(members []*Member, senderIdx int, value []byte, f int) (map[int][]byte, error) {
	if err := validateMembers(members); err != nil {
		return nil, err
	}
	if senderIdx < 0 || senderIdx >= len(members) {
		return nil, fmt.Errorf("consensus: sender index %d outside [0,%d)", senderIdx, len(members))
	}
	if f < 0 || f >= len(members) {
		return nil, fmt.Errorf("consensus: f=%d outside [0,%d)", f, len(members))
	}
	sender := members[senderIdx]
	// extracted[i] holds the set of distinct values member i accepted.
	extracted := make([]map[string]bool, len(members))
	for i := range extracted {
		extracted[i] = make(map[string]bool)
	}
	// inbox[i] are chains delivered to member i for the next round.
	inbox := make([][]signedValue, len(members))

	// Round 0: the sender signs and sends.
	switch sender.Behavior {
	case Silent, DropRelay:
		// DropRelay still sends its own value (it drops only relays).
		if sender.Behavior == Silent {
			break
		}
		fallthrough
	case Honest:
		sv := signedValue{
			value:   append([]byte(nil), value...),
			signers: []int{senderIdx},
			sigs:    [][]byte{sender.Identity.Sign(message(senderIdx, value))},
		}
		for i := range members {
			inbox[i] = append(inbox[i], sv)
		}
	case Equivocate:
		alt := append(append([]byte(nil), value...), 0xFF)
		svA := signedValue{
			value:   append([]byte(nil), value...),
			signers: []int{senderIdx},
			sigs:    [][]byte{sender.Identity.Sign(message(senderIdx, value))},
		}
		svB := signedValue{
			value:   alt,
			signers: []int{senderIdx},
			sigs:    [][]byte{sender.Identity.Sign(message(senderIdx, alt))},
		}
		for i := range members {
			if i%2 == 0 {
				inbox[i] = append(inbox[i], svA)
			} else {
				inbox[i] = append(inbox[i], svB)
			}
		}
	}

	// Rounds 1..f+1: honest members extract values carried by chains with
	// ≥ round distinct valid signatures (sender first) and relay them
	// once with their own signature appended.
	for round := 1; round <= f+1; round++ {
		outbox := make([][]signedValue, len(members))
		for i, m := range members {
			msgs := inbox[i]
			inbox[i] = nil
			if m.Behavior != Honest {
				continue // Byzantine relays drop (worst case for liveness)
			}
			for _, sv := range msgs {
				if !validChain(members, senderIdx, sv, round) {
					continue
				}
				key := string(sv.value)
				if extracted[i][key] {
					continue
				}
				extracted[i][key] = true
				if len(extracted[i]) > 2 {
					continue // already provably faulty; no need to relay more
				}
				// Relay with own signature appended.
				if round <= f && !contains(sv.signers, i) {
					relayed := signedValue{
						value:   sv.value,
						signers: append(append([]int(nil), sv.signers...), i),
						sigs:    append(append([][]byte(nil), sv.sigs...), m.Identity.Sign(message(senderIdx, sv.value))),
					}
					for j := range members {
						outbox[j] = append(outbox[j], relayed)
					}
				}
			}
		}
		inbox = outbox
	}

	// Decision: exactly one extracted value → that value; otherwise ⊥.
	out := make(map[int][]byte, len(members))
	for i, m := range members {
		if m.Behavior != Honest {
			continue
		}
		if len(extracted[i]) == 1 {
			for key := range extracted[i] {
				out[i] = []byte(key)
			}
			continue
		}
		out[i] = Default
	}
	return out, nil
}

// validChain checks a signature chain: distinct signers, first the
// sender, every signature valid, and at least `round` signatures.
func validChain(members []*Member, senderIdx int, sv signedValue, round int) bool {
	if len(sv.signers) != len(sv.sigs) || len(sv.signers) < round {
		return false
	}
	if sv.signers[0] != senderIdx {
		return false
	}
	seen := make(map[int]bool, len(sv.signers))
	msg := message(senderIdx, sv.value)
	for i, signer := range sv.signers {
		if signer < 0 || signer >= len(members) || seen[signer] {
			return false
		}
		seen[signer] = true
		cert := members[signer].Identity.Certificate()
		if !ed25519.Verify(cert.PublicKey, msg, sv.sigs[i]) {
			return false
		}
	}
	return true
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func validateMembers(members []*Member) error {
	if len(members) == 0 {
		return fmt.Errorf("consensus: empty member set")
	}
	for i, m := range members {
		if m == nil || m.Identity == nil {
			return fmt.Errorf("consensus: member %d missing identity", i)
		}
		if m.Index != i {
			return fmt.Errorf("consensus: member %d has index %d", i, m.Index)
		}
	}
	return nil
}

// AgreeOnSeed has every member broadcast a 8-byte contribution and hashes
// the agreed vector into a shared seed. contributions[i] is member i's
// input (Byzantine members may contribute anything). It returns the seed
// as computed by each honest member; the Byzantine-agreement property
// guarantees all returned seeds are identical whenever the Byzantine
// count is ≤ f.
func AgreeOnSeed(members []*Member, contributions [][]byte, f int) (map[int][32]byte, error) {
	if err := validateMembers(members); err != nil {
		return nil, err
	}
	if len(contributions) != len(members) {
		return nil, fmt.Errorf("consensus: %d contributions for %d members", len(contributions), len(members))
	}
	// agreed[i][s] is what member i decided for sender s.
	agreed := make([]map[int][]byte, len(members))
	for i := range agreed {
		agreed[i] = make(map[int][]byte)
	}
	for s := range members {
		out, err := Broadcast(members, s, contributions[s], f)
		if err != nil {
			return nil, err
		}
		for i, v := range out {
			agreed[i][s] = v
		}
	}
	seeds := make(map[int][32]byte, len(members))
	for i, m := range members {
		if m.Behavior != Honest {
			continue
		}
		var buf bytes.Buffer
		senders := make([]int, 0, len(agreed[i]))
		for s := range agreed[i] {
			senders = append(senders, s)
		}
		sort.Ints(senders)
		for _, s := range senders {
			var idx [8]byte
			binary.BigEndian.PutUint64(idx[:], uint64(s))
			buf.Write(idx[:])
			buf.Write(agreed[i][s])
		}
		seeds[i] = sha256.Sum256(buf.Bytes())
	}
	return seeds, nil
}

// SelectIndices expands an agreed seed into a uniform random k-subset of
// {0,…,n−1} (partial Fisher-Yates), the randomized choice used by the
// protocol_k core maintenance and the split operation.
func SelectIndices(seed [32]byte, n, k int) ([]int, error) {
	if n < 0 || k < 0 || k > n {
		return nil, fmt.Errorf("consensus: cannot select %d of %d", k, n)
	}
	rng := rand.New(rand.NewSource(int64(binary.BigEndian.Uint64(seed[:8]))))
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	out := perm[:k]
	sort.Ints(out)
	return out, nil
}
