package consensus

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"targetedattacks/internal/identity"
)

// newMembers builds a core set of size n with the given Byzantine members.
func newMembers(t *testing.T, n int, byz map[int]Behavior) []*Member {
	t.Helper()
	ca, err := identity.NewCA("consensus-test", 1)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Member, n)
	for i := 0; i < n; i++ {
		idn, err := identity.NewIdentity(ca, "member", 0, 128, int64(1000+i))
		if err != nil {
			t.Fatal(err)
		}
		b := Honest
		if byz != nil {
			if bb, ok := byz[i]; ok {
				b = bb
			}
		}
		out[i] = &Member{Index: i, Identity: idn, Behavior: b}
	}
	return out
}

// honestOutputs collects the decided values of honest members.
func honestOutputs(members []*Member, out map[int][]byte) [][]byte {
	var vals [][]byte
	for i, m := range members {
		if m.Behavior == Honest {
			vals = append(vals, out[i])
		}
	}
	return vals
}

func assertAgreement(t *testing.T, vals [][]byte) []byte {
	t.Helper()
	if len(vals) == 0 {
		t.Fatal("no honest outputs")
	}
	for _, v := range vals[1:] {
		if !bytes.Equal(v, vals[0]) {
			t.Fatalf("honest members disagree: %q vs %q", vals[0], v)
		}
	}
	return vals[0]
}

func TestBroadcastAllHonest(t *testing.T) {
	members := newMembers(t, 7, nil)
	out, err := Broadcast(members, 2, []byte("value"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := assertAgreement(t, honestOutputs(members, out))
	if !bytes.Equal(got, []byte("value")) {
		t.Errorf("validity violated: decided %q", got)
	}
}

func TestBroadcastSilentSender(t *testing.T) {
	members := newMembers(t, 7, map[int]Behavior{3: Silent})
	out, err := Broadcast(members, 3, []byte("value"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := assertAgreement(t, honestOutputs(members, out))
	if !bytes.Equal(got, Default) {
		t.Errorf("silent sender: decided %q, want ⊥", got)
	}
}

func TestBroadcastEquivocatingSender(t *testing.T) {
	// With f = 2 and one equivocating sender, every honest member must
	// detect the fault and output ⊥ consistently.
	members := newMembers(t, 7, map[int]Behavior{0: Equivocate})
	out, err := Broadcast(members, 0, []byte("v"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := assertAgreement(t, honestOutputs(members, out))
	if !bytes.Equal(got, Default) {
		t.Errorf("equivocating sender: decided %q, want ⊥", got)
	}
}

func TestBroadcastHonestSenderWithByzantineRelays(t *testing.T) {
	// Byzantine relays cannot prevent delivery of an honest sender's
	// value (they can only drop, not forge).
	members := newMembers(t, 7, map[int]Behavior{1: DropRelay, 5: Silent})
	out, err := Broadcast(members, 2, []byte("payload"), 2)
	if err != nil {
		t.Fatal(err)
	}
	got := assertAgreement(t, honestOutputs(members, out))
	if !bytes.Equal(got, []byte("payload")) {
		t.Errorf("byzantine relays broke validity: %q", got)
	}
}

func TestBroadcastValidation(t *testing.T) {
	members := newMembers(t, 4, nil)
	if _, err := Broadcast(members, -1, []byte("v"), 1); err == nil {
		t.Error("bad sender: want error")
	}
	if _, err := Broadcast(members, 0, []byte("v"), 4); err == nil {
		t.Error("f ≥ n: want error")
	}
	if _, err := Broadcast(nil, 0, []byte("v"), 0); err == nil {
		t.Error("empty members: want error")
	}
	members[2].Index = 7
	if _, err := Broadcast(members, 0, []byte("v"), 1); err == nil {
		t.Error("wrong index: want error")
	}
	members[2].Index = 2
	members[2].Identity = nil
	if _, err := Broadcast(members, 0, []byte("v"), 1); err == nil {
		t.Error("missing identity: want error")
	}
}

// TestBroadcastAgreementProperty: agreement holds for random Byzantine
// subsets of size ≤ f among 3f+1 members.
func TestBroadcastAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const fTol = 2
		const n = 3*fTol + 1
		byz := map[int]Behavior{}
		behaviors := []Behavior{Silent, Equivocate, DropRelay}
		for len(byz) < fTol {
			byz[rng.Intn(n)] = behaviors[rng.Intn(len(behaviors))]
		}
		members := newMembersQuick(n, byz)
		sender := rng.Intn(n)
		out, err := Broadcast(members, sender, []byte{byte(seed)}, fTol)
		if err != nil {
			return false
		}
		vals := honestOutputs(members, out)
		if len(vals) == 0 {
			return false
		}
		for _, v := range vals[1:] {
			if !bytes.Equal(v, vals[0]) {
				return false
			}
		}
		// Validity: honest sender's value must be decided.
		if members[sender].Behavior == Honest && !bytes.Equal(vals[0], []byte{byte(seed)}) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// newMembersQuick builds members without a *testing.T for property tests.
func newMembersQuick(n int, byz map[int]Behavior) []*Member {
	ca, err := identity.NewCA("consensus-quick", 2)
	if err != nil {
		panic(err)
	}
	out := make([]*Member, n)
	for i := 0; i < n; i++ {
		idn, err := identity.NewIdentity(ca, "member", 0, 128, int64(2000+i))
		if err != nil {
			panic(err)
		}
		b := Honest
		if bb, ok := byz[i]; ok {
			b = bb
		}
		out[i] = &Member{Index: i, Identity: idn, Behavior: b}
	}
	return out
}

func TestAgreeOnSeedAllHonest(t *testing.T) {
	members := newMembers(t, 7, nil)
	contribs := make([][]byte, 7)
	for i := range contribs {
		contribs[i] = []byte{byte(i), 0xAA}
	}
	seeds, err := AgreeOnSeed(members, contribs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 7 {
		t.Fatalf("%d seeds, want 7", len(seeds))
	}
	var first [32]byte
	got := false
	for _, s := range seeds {
		if !got {
			first, got = s, true
			continue
		}
		if s != first {
			t.Fatal("honest members derived different seeds")
		}
	}
}

func TestAgreeOnSeedWithByzantine(t *testing.T) {
	members := newMembers(t, 7, map[int]Behavior{1: Equivocate, 4: Silent})
	contribs := make([][]byte, 7)
	for i := range contribs {
		contribs[i] = []byte{byte(i)}
	}
	seeds, err := AgreeOnSeed(members, contribs, 2)
	if err != nil {
		t.Fatal(err)
	}
	var first [32]byte
	got := false
	for i, m := range members {
		if m.Behavior != Honest {
			if _, ok := seeds[i]; ok {
				t.Errorf("byzantine member %d has a seed entry", i)
			}
			continue
		}
		s, ok := seeds[i]
		if !ok {
			t.Fatalf("honest member %d missing seed", i)
		}
		if !got {
			first, got = s, true
			continue
		}
		if s != first {
			t.Fatal("honest members derived different seeds despite f ≤ 2")
		}
	}
}

func TestAgreeOnSeedSensitivity(t *testing.T) {
	// Different honest contributions must produce a different seed.
	members := newMembers(t, 4, nil)
	c1 := [][]byte{{1}, {2}, {3}, {4}}
	c2 := [][]byte{{1}, {2}, {3}, {5}}
	s1, err := AgreeOnSeed(members, c1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := AgreeOnSeed(members, c2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1[0] == s2[0] {
		t.Error("seed insensitive to contributions")
	}
}

func TestAgreeOnSeedValidation(t *testing.T) {
	members := newMembers(t, 3, nil)
	if _, err := AgreeOnSeed(members, [][]byte{{1}}, 1); err == nil {
		t.Error("contribution count mismatch: want error")
	}
}

func TestSelectIndices(t *testing.T) {
	var seed [32]byte
	seed[0] = 42
	got, err := SelectIndices(seed, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("selected %d, want 3", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 10 || seen[i] {
			t.Fatalf("bad selection %v", got)
		}
		seen[i] = true
	}
	// Deterministic.
	again, err := SelectIndices(seed, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != again[i] {
			t.Error("selection must be deterministic in the seed")
		}
	}
	if _, err := SelectIndices(seed, 3, 5); err == nil {
		t.Error("k > n: want error")
	}
	empty, err := SelectIndices(seed, 5, 0)
	if err != nil || len(empty) != 0 {
		t.Errorf("k=0: %v, %v", empty, err)
	}
}

// TestSelectIndicesUniformity: every index appears with roughly equal
// frequency over many seeds.
func TestSelectIndicesUniformity(t *testing.T) {
	counts := make([]int, 6)
	const trials = 6000
	for i := 0; i < trials; i++ {
		var seed [32]byte
		seed[0], seed[1], seed[2] = byte(i), byte(i>>8), byte(i>>16)
		sel, err := SelectIndices(seed, 6, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range sel {
			counts[s]++
		}
	}
	want := float64(trials) * 2 / 6
	for i, c := range counts {
		if diff := float64(c) - want; diff > want/5 || diff < -want/5 {
			t.Errorf("index %d selected %d times, want ≈%.0f", i, c, want)
		}
	}
}
