// Quickstart: build the DSN 2011 targeted-attack model, compute the
// closed-form resilience metrics of one cluster, and print them.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"targetedattacks"
)

func main() {
	// The paper's evaluation configuration: clusters with a core of C=7
	// (pollution quorum c=2) and up to ∆=7 spares, protocol_1.
	params := targetedattacks.DefaultParams()
	params.Mu = 0.20 // the adversary controls 20% of the universe
	params.D = 0.90  // identifiers survive one time unit with probability 90%

	model, err := targetedattacks.NewModel(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %v over %d states\n\n", params, model.Space().Size())

	// δ: the cluster starts clean (half-full spare set, no malicious
	// peers). The analysis returns every closed form of the paper.
	analysis, err := model.AnalyzeNamed(targetedattacks.DistributionDelta, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("starting from a clean cluster (α = δ):")
	fmt.Printf("  E(T_S) = %.4f events spent safe before the cluster splits or merges\n",
		analysis.ExpectedSafeTime)
	fmt.Printf("  E(T_P) = %.4f events spent polluted (adversary holds > c core seats)\n",
		analysis.ExpectedPollutedTime)
	fmt.Printf("  first safe sojourn  E(T_S,1) = %.4f\n", analysis.SafeSojourns[0])
	fmt.Printf("  first polluted stay E(T_P,1) = %.4f\n", analysis.PollutedSojourns[0])
	fmt.Printf("  P(ever polluted)             = %.4f\n", analysis.PollutionProbability)
	fmt.Println("  absorption probabilities:")
	for _, name := range []string{
		targetedattacks.ClassNameSafeMerge,
		targetedattacks.ClassNameSafeSplit,
		targetedattacks.ClassNamePollutedMerge,
		targetedattacks.ClassNamePollutedSplit,
	} {
		fmt.Printf("    %-16s %.4f\n", name, analysis.Absorption[name])
	}

	// The same cluster under the β start (already infiltrated
	// proportionally to µ) — the adversary's job is much easier.
	betaAnalysis, err := model.AnalyzeNamed(targetedattacks.DistributionBeta, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstarting already infiltrated (α = β): E(T_P) = %.4f (vs %.4f from δ)\n",
		betaAnalysis.ExpectedPollutedTime, analysis.ExpectedPollutedTime)

	// Overlay view: 500 clusters competing for the same event stream.
	overlay, err := targetedattacks.NewOverlay(model, 500)
	if err != nil {
		log.Fatal(err)
	}
	points, err := overlay.ProportionSeries(model.InitialDelta(), 20000, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noverlay of 500 clusters (Theorem 2):")
	for _, pt := range points {
		fmt.Printf("  after %6d events: %.4f safe, %.6f polluted\n",
			pt.Events, pt.Safe, pt.Polluted)
	}
}
