// Command largecluster demonstrates the sparse analytic pipeline on a
// cluster far larger than anything the paper prints: C = ∆ = 20, a state
// space of 4851 states with 4389 transient ones. The dense LU path would
// factor a 4389×4389 matrix several times per analysis; the sparse
// BiCGSTAB backend solves the same relations in milliseconds without ever
// materializing a dense matrix.
//
// Run it with:
//
//	go run ./examples/largecluster
package main

import (
	"fmt"
	"io"
	"os"

	attacks "targetedattacks"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "largecluster:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	p := attacks.Params{C: 20, Delta: 20, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1}
	model, err := attacks.NewModelWithSolver(p, attacks.SolverConfig{Kind: "sparse"})
	if err != nil {
		return err
	}
	a, err := model.AnalyzeNamed(attacks.DistributionDelta, 2)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "model: %v, |Ω| = %d states, solver = %s\n", p, model.Space().Size(), model.SolverName())
	fmt.Fprintf(w, "E(T_S) = %.4f\n", a.ExpectedSafeTime)
	fmt.Fprintf(w, "E(T_P) = %.4f\n", a.ExpectedPollutedTime)
	fmt.Fprintf(w, "P(ever polluted) = %.4f\n", a.PollutionProbability)
	fmt.Fprintf(w, "p(safe-merge) = %.4f\n", a.Absorption[attacks.ClassNameSafeMerge])
	fmt.Fprintf(w, "p(polluted-merge) = %.4f\n", a.Absorption[attacks.ClassNamePollutedMerge])
	var sum float64
	for _, pr := range a.Absorption {
		sum += pr
	}
	fmt.Fprintf(w, "Σ absorption = %.6f\n", sum)
	return nil
}
