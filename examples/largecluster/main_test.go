package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestLargeClusterSmoke pins the example's expected output: a C = ∆ = 20
// analysis (4851 states) on the sparse solver, with the headline numbers
// stable to the printed precision. A dense-path regression (or a solver
// accuracy drift past 1e-4) breaks this test.
func TestLargeClusterSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"|Ω| = 4851 states",
		"solver = bicgstab",
		"E(T_S) = 88.0730",
		"E(T_P) = 4.1537",
		"P(ever polluted) = 0.1745",
		"p(safe-merge) = 0.3017",
		"p(polluted-merge) = 0.1292",
		"Σ absorption = 1.000000",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}
