// Validation: cross-check the paper's closed-form results against direct
// Monte-Carlo simulation of the cluster Markov chain.
//
// Run with:
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"

	"targetedattacks"
)

func main() {
	params := targetedattacks.DefaultParams()
	params.Mu = 0.20
	params.D = 0.80

	model, err := targetedattacks.NewModel(params)
	if err != nil {
		log.Fatal(err)
	}
	exact, err := model.AnalyzeNamed(targetedattacks.DistributionDelta, 1)
	if err != nil {
		log.Fatal(err)
	}

	sim, err := targetedattacks.NewSimulator(model, 2026)
	if err != nil {
		log.Fatal(err)
	}
	const runs = 50000
	summary, err := sim.RunMany(model.InitialDelta(), runs, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("closed form vs %d Monte-Carlo trajectories at %v, α=δ\n\n", runs, params)
	fmt.Printf("%-20s %-14s %-14s %s\n", "quantity", "closed form", "monte carlo", "95% CI")
	fmt.Printf("%-20s %-14.4f %-14.4f ±%.4f\n", "E(T_S)",
		exact.ExpectedSafeTime, summary.SafeTime.Mean(), summary.SafeTime.ConfidenceInterval95())
	fmt.Printf("%-20s %-14.4f %-14.4f ±%.4f\n", "E(T_P)",
		exact.ExpectedPollutedTime, summary.PollutedTime.Mean(), summary.PollutedTime.ConfidenceInterval95())
	fmt.Printf("%-20s %-14.4f %-14.4f ±%.4f\n", "E(T_S,1)",
		exact.SafeSojourns[0], summary.FirstSafeSojourn.Mean(), summary.FirstSafeSojourn.ConfidenceInterval95())
	fmt.Printf("%-20s %-14.4f %-14.4f ±%.4f\n", "E(T_P,1)",
		exact.PollutedSojourns[0], summary.FirstPollutedSojourn.Mean(), summary.FirstPollutedSojourn.ConfidenceInterval95())
	for _, name := range []string{
		targetedattacks.ClassNameSafeMerge,
		targetedattacks.ClassNameSafeSplit,
		targetedattacks.ClassNamePollutedMerge,
	} {
		fmt.Printf("p(%-17s) %-14.4f %-14.4f\n", name,
			exact.Absorption[name], summary.Absorption.Frequency(name))
	}
	if summary.Truncated > 0 {
		fmt.Printf("\n%d trajectories hit the step budget before absorption\n", summary.Truncated)
	}
	fmt.Println("\nEvery Monte-Carlo estimate should bracket its closed-form value within")
	fmt.Println("the confidence interval — the simulation and the analysis implement the")
	fmt.Println("same transition tree through entirely different code paths.")
}
