// Churn tuning: pick the incarnation lifetime L that keeps a cluster's
// expected polluted time below a target, for an assumed adversary
// strength µ — the paper's second headline lesson ("by choosing an
// adequate value of L it is possible to noticeably reduce the propagation
// of attacks … there is no need to keep the system in hyper-activity").
//
// Run with:
//
//	go run ./examples/churntuning
package main

import (
	"fmt"
	"log"

	"targetedattacks"
)

// budget is the maximum tolerable expected number of events a cluster
// spends polluted over its lifetime.
const budget = 1.0

func main() {
	fmt.Println("Tuning induced churn against a targeted attack (C=7, ∆=7, protocol_1)")
	fmt.Println()
	fmt.Printf("%-6s | %-10s %-10s | %-12s %-12s %-10s\n",
		"µ", "d", "L", "E(T_S)", "E(T_P)", "ok(≤1.0)")
	fmt.Println("-------+-----------------------+--------------------------------------")

	for _, mu := range []float64{0.10, 0.20, 0.30} {
		best := -1.0
		// Sweep the survival probability d; larger d = weaker induced
		// churn = cheaper maintenance but longer pollution episodes.
		for _, d := range []float64{0.30, 0.50, 0.80, 0.90, 0.95, 0.99} {
			params := targetedattacks.DefaultParams()
			params.Mu = mu
			params.D = d
			model, err := targetedattacks.NewModel(params)
			if err != nil {
				log.Fatal(err)
			}
			analysis, err := model.AnalyzeNamed(targetedattacks.DistributionDelta, 1)
			if err != nil {
				log.Fatal(err)
			}
			lifetime, err := targetedattacks.LifetimeFromSurvival(d)
			if err != nil {
				log.Fatal(err)
			}
			ok := analysis.ExpectedPollutedTime <= budget
			mark := " "
			if ok {
				mark = "✓"
				if lifetime > best {
					best = lifetime
				}
			}
			fmt.Printf("%-6.2f | %-10.2f %-10.2f | %-12.4f %-12.4g %s\n",
				mu, d, lifetime, analysis.ExpectedSafeTime, analysis.ExpectedPollutedTime, mark)
		}
		if best > 0 {
			fmt.Printf("  → against µ=%.0f%%, the longest safe incarnation lifetime is L ≈ %.2f\n\n",
				mu*100, best)
		} else {
			fmt.Printf("  → against µ=%.0f%%, no swept lifetime meets the budget; churn harder\n\n",
				mu*100)
		}
	}
	fmt.Println("Reading: the lifetime L is what an operator deploys (certificate")
	fmt.Println("incarnation length); d = 1 − 6.65·ln2/L is the model knob. Larger µ")
	fmt.Println("forces shorter lifetimes — but even µ=30% needs only moderate churn,")
	fmt.Println("not hyper-activity.")
}
