// Targeted attack: run the full agent-based overlay simulator — real
// certificate-derived identifiers, hypercube clusters with core/spare
// role separation, robust join/leave/split/merge, and a colluding
// adversary executing Rules 1 and 2 — and watch pollution rise and fall
// with the induced-churn knob.
//
// Run with:
//
//	go run ./examples/targetedattack
package main

import (
	"fmt"
	"log"

	"targetedattacks/internal/core"
	"targetedattacks/internal/overlaynet"
)

func main() {
	fmt.Println("Agent-based overlay under a targeted attack (µ=30%)")
	fmt.Println()

	for _, d := range []float64{0.50, 0.90, 0.99} {
		cfg := overlaynet.Config{
			Params:           core.Params{C: 7, Delta: 7, Mu: 0.30, D: d, K: 1, Nu: 0.1},
			InitialLabelBits: 3, // 8 clusters
			Seed:             7,
		}
		net, err := overlaynet.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("d = %.2f (incarnation lifetime L = %.1f):\n", d, net.Config().Lifetime)
		fmt.Printf("  %-8s %-9s %-9s %-10s\n", "events", "clusters", "polluted", "discards")
		for step := 0; step < 4; step++ {
			if err := net.Run(5000); err != nil {
				log.Fatal(err)
			}
			snap := net.Snapshot()
			m := net.Metrics()
			fmt.Printf("  %-8d %-9d %-9d %-10d\n",
				m.Events, snap.Clusters, snap.PollutedClusters, m.DiscardedJoins)
		}
		m := net.Metrics()
		fmt.Printf("  census: %d joins (%d discarded by Rule 2), %d leaves (%d refused),\n",
			m.Joins, m.DiscardedJoins, m.Leaves, m.RefusedLeaves)
		fmt.Printf("          %d splits, %d merges, %d core underflows\n\n",
			m.Splits, m.Merges, m.CoreUnderflows)
	}
	fmt.Println("Reading: with weak churn (d=0.99) the adversary accumulates seats and")
	fmt.Println("Rule 2 discard counts climb — polluted clusters freeze their topology.")
	fmt.Println("Strong induced churn (d=0.5) recycles malicious incarnations before")
	fmt.Println("they reach the quorum.")
}
