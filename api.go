package targetedattacks

import (
	"context"

	// Registers the APT compromise-chain family so ModelFamilies and
	// LookupModelFamily see every built-in model.
	_ "targetedattacks/internal/aptchain"
	"targetedattacks/internal/attackd"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/experiments"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/montecarlo"
	"targetedattacks/internal/overlay"
	"targetedattacks/internal/sweep"
)

// Re-exported model types. The analytical engine lives in internal
// packages; these aliases form the stable public surface.
type (
	// Params are the model parameters (C, ∆, µ, d, k, ν).
	Params = core.Params
	// State is a cluster state (s, x, y).
	State = core.State
	// Class partitions the state space (safe, polluted, closed classes).
	Class = core.Class
	// Model is the cluster Markov-chain model.
	Model = core.Model
	// Analysis bundles the closed-form results for one initial
	// distribution.
	Analysis = core.Analysis
	// InitialDistribution selects one of the paper's initial
	// distributions (δ or β).
	InitialDistribution = core.InitialDistribution
	// Overlay is the n-cluster competing-chains view (Section VIII).
	Overlay = overlay.CompetingChains
	// OverlayPoint is one sample of the overlay proportions series.
	OverlayPoint = overlay.Point
	// Simulator is the Monte-Carlo cluster simulator.
	Simulator = montecarlo.Simulator
	// Trajectory is one simulated cluster lifetime.
	Trajectory = montecarlo.Trajectory
	// SimulationSummary aggregates Monte-Carlo runs.
	SimulationSummary = montecarlo.Summary
	// Pool is the worker-pool execution engine under every parallel
	// entry point: Monte-Carlo batches (Simulator.RunBatch and
	// Simulator.RunManyBatch) and experiment scenario sweeps. Results
	// are deterministic for a fixed seed, whatever the pool width.
	Pool = engine.Pool
	// SolverConfig selects the linear-solver backend of the closed-form
	// analytics: the exact dense LU (the zero value) or a sparse
	// iterative path ("sparse"/"bicgstab", "gs", "ilu", "auto") that
	// never densifies the transition matrix and keeps state spaces with
	// thousands of transient states affordable. "ilu" preconditions
	// BiCGSTAB with a zero-fill ILU(0) factorization — the slow-mixing
	// d → 1 regime; "auto" probes each block's mixing speed and chooses.
	SolverConfig = matrix.SolverConfig
	// SolveStats reports what the solver layer did during an Analysis:
	// the backend that answered (after any auto selection), total
	// iterative-solver iterations, and sparse-to-dense fallbacks with
	// their reason. Available as Analysis.Solver.
	SolveStats = matrix.SolveStats
	// WarmStart carries the converged solution vectors of one analysis
	// so a neighboring parameter point can seed its iterative solves
	// from them (Model.AnalyzeNamedWarm; sweeps use this through
	// SweepOptions.WarmStart).
	WarmStart = core.WarmStart
	// BuildOption tunes the construction of the transition matrix in
	// NewModel / NewModelWithSolver (see WithBuildPool, WithSharedSpace,
	// WithRule1Gains).
	BuildOption = core.BuildOption
	// SweepPlan is a parameter grid: one axis per model parameter
	// (C, ∆, k, µ, d, ν), evaluated with shared structure by
	// EvaluateSweep.
	SweepPlan = sweep.Plan
	// SweepOptions tunes a grid evaluation (pool, build pool, solver,
	// warm-start lanes, streaming callback).
	SweepOptions = sweep.Options
	// SweepResult is the deterministic outcome of a grid evaluation.
	SweepResult = sweep.ResultSet
	// SweepCell is one cell's outcome inside a SweepResult.
	SweepCell = sweep.CellResult
	// SimPlan is a simulation-sweep grid: strategy × µ × d × population
	// sizes of whole-system overlay runs, each cell aggregating
	// Monte-Carlo replicas; evaluated by EvaluateSimSweep.
	SimPlan = sweep.SimPlan
	// SimOptions tunes a simulation-sweep evaluation (pool, streaming
	// callback).
	SimOptions = sweep.SimOptions
	// SimResult is the deterministic outcome of a simulation sweep.
	SimResult = sweep.SimResultSet
	// SimCell is one simulation cell's aggregated outcome.
	SimCell = sweep.SimCellResult
	// Rule1Gains is the precomputed relation (2) gain table of one
	// (C, ∆, k): the reusable half of a row structure that parameter
	// sweeps share across cells (see ComputeRule1Gains).
	Rule1Gains = core.Rule1Gains
	// Space is the enumerated state space Ω(C, ∆); immutable, so one
	// enumeration can back many model builds (see WithSharedSpace).
	Space = core.Space
	// ModelFamily is one registered absorbing-chain model: its parameter
	// space, state space and the sweep structure the amortized evaluator
	// exploits. The paper model registers as "targeted-attack", the APT
	// compromise chain as "apt-compromise"; see ModelFamilies.
	ModelFamily = chainmodel.Family
	// ModelInstance is one analyzable chain of a family (a built
	// transition matrix plus its transient/absorbing partition).
	ModelInstance = chainmodel.Instance
	// ModelAnalysis bundles the closed-form results of any family in
	// model-free vocabulary (times and sojourns in the transient subsets
	// A and B, absorption per named class, hit probability of B).
	ModelAnalysis = chainmodel.Analysis
	// ModelSweepPlan is a model-agnostic parameter grid: a family plus
	// its cells in canonical order, evaluated by EvaluateModelSweep.
	ModelSweepPlan = sweep.ModelPlan
	// ModelSweepOptions tunes a model-agnostic grid evaluation.
	ModelSweepOptions = sweep.ModelOptions
	// ModelSweepResult is the deterministic outcome of a model-agnostic
	// grid evaluation.
	ModelSweepResult = sweep.ModelResultSet
	// ModelSweepCell is one cell's outcome inside a ModelSweepResult.
	ModelSweepCell = sweep.ModelCellResult
)

// Initial distributions of the paper (Section VII-A).
const (
	// DistributionDelta starts from (⌊∆/2⌋, 0, 0): no malicious peers.
	DistributionDelta = core.DistributionDelta
	// DistributionBeta starts with binomial malicious populations.
	DistributionBeta = core.DistributionBeta
)

// State classes of the partition of Ω (Section VI).
const (
	ClassSafe          = core.ClassSafe
	ClassPolluted      = core.ClassPolluted
	ClassSafeMerge     = core.ClassSafeMerge
	ClassSafeSplit     = core.ClassSafeSplit
	ClassPollutedMerge = core.ClassPollutedMerge
	ClassPollutedSplit = core.ClassPollutedSplit
)

// Absorbing class names as used in Analysis.Absorption.
const (
	ClassNameSafeMerge     = core.ClassNameSafeMerge
	ClassNameSafeSplit     = core.ClassNameSafeSplit
	ClassNamePollutedMerge = core.ClassNamePollutedMerge
	ClassNamePollutedSplit = core.ClassNamePollutedSplit
)

// DefaultParams returns the paper's evaluation configuration
// (C = 7, ∆ = 7, protocol_1, ν = 0.1).
func DefaultParams() Params { return core.DefaultParams() }

// NewModel validates p and builds the cluster model: its state space Ω
// and the exact transition matrix of the paper's Figure 2. Analyses use
// the exact dense LU solver; use NewModelWithSolver for the sparse path.
func NewModel(p Params, opts ...BuildOption) (*Model, error) { return core.New(p, opts...) }

// NewModelWithSolver is NewModel with an explicit linear-solver backend,
// e.g. SolverConfig{Kind: "sparse"} for the iterative CSR path that makes
// large C/∆ state spaces affordable.
func NewModelWithSolver(p Params, sc SolverConfig, opts ...BuildOption) (*Model, error) {
	return core.NewWithSolver(p, sc, opts...)
}

// WithBuildPool fans the per-row construction of the transition matrix
// across pool. Rows are emitted into row-local builders and concatenated
// deterministically, so the resulting matrix is bit-identical to a serial
// build for any pool width; at C = ∆ ≥ 40 (tens of thousands of states)
// construction parallelism is what keeps model creation interactive.
func WithBuildPool(pool *Pool) BuildOption { return core.WithBuildPool(pool) }

// WithSharedSpace reuses a pre-enumerated state space across model
// builds at fixed (C, ∆) — a Space is immutable, so one enumeration can
// back every cell of a parameter sweep.
func WithSharedSpace(sp *Space) BuildOption { return core.WithSpace(sp) }

// WithRule1Gains consults a precomputed relation (2) gain table during
// construction instead of re-deriving each state's gain; the matrix is
// bit-identical either way. Gains depend only on (C, ∆, k), so sweeps
// over (µ, d, ν) share one table.
func WithRule1Gains(g *Rule1Gains) BuildOption { return core.WithRule1Gains(g) }

// NewSpace enumerates the state space Ω(C, ∆) for sharing across model
// builds via WithSharedSpace.
func NewSpace(c, delta int) (*Space, error) { return core.NewSpace(c, delta) }

// ComputeRule1Gains tabulates the adversary's relation (2) gain for
// every Rule 1-eligible state of Ω(C, ∆) under protocol_k.
func ComputeRule1Gains(p Params) (*Rule1Gains, error) { return core.ComputeRule1Gains(p) }

// EvaluateSweep runs a parameter grid through the amortized evaluator:
// one shared state space, maintenance kernel and Rule 1 gain table per
// (C, ∆) group, provably identical cells solved once (the ν axis
// collapses wherever the Rule 1 firing set does not change), distinct
// chains fanned across the options' Pool. Every cell's Analysis is
// bit-identical to an independent per-cell NewModelWithSolver + Analyze
// of the same parameters. cmd/attackd serves this evaluator over HTTP.
func EvaluateSweep(ctx context.Context, plan SweepPlan, opts SweepOptions) (*SweepResult, error) {
	return sweep.Evaluate(ctx, plan, opts)
}

// EvaluateSimSweep runs a simulation-sweep grid: every cell's
// Monte-Carlo replicas are whole overlay-system runs (bootstrap, churn,
// split/merge, adversary) fanned across the options' Pool with
// per-replica PCG streams, reduced in fixed replica order — summaries
// are bit-identical for any worker count. cmd/attackd serves this
// evaluator as POST /v1/simsweep.
func EvaluateSimSweep(ctx context.Context, plan SimPlan, opts SimOptions) (*SimResult, error) {
	return sweep.EvaluateSim(ctx, plan, opts)
}

// ModelFamilies lists the registered model family names, sorted. The
// serving layer's "model" request field and LookupModelFamily accept
// exactly these.
func ModelFamilies() []string { return chainmodel.Names() }

// LookupModelFamily resolves a registered family by name; the empty
// name selects the default "targeted-attack" paper model.
func LookupModelFamily(name string) (ModelFamily, bool) { return chainmodel.Lookup(name) }

// AnalyzeModel runs the full closed-form analysis on any family's
// instance for one of its named initial distributions ("" selects the
// family default only through EvaluateModelSweep; here the name is
// explicit). The arithmetic is identical to the paper model's Analyze.
func AnalyzeModel(inst ModelInstance, dist string, sojourns int) (*ModelAnalysis, error) {
	return chainmodel.Analyze(inst, dist, sojourns)
}

// EvaluateModelSweep runs a model-agnostic grid through the amortized
// three-pass planner: shared immutable tables per family group,
// provably identical cells solved once, warm-start lanes along the
// family's declared slow axis. EvaluateSweep is the paper model's
// specialized view of this evaluator; cmd/attackd serves both over
// HTTP (the request's "model" field selects the family).
func EvaluateModelSweep(ctx context.Context, plan ModelSweepPlan, opts ModelSweepOptions) (*ModelSweepResult, error) {
	return sweep.EvaluateModel(ctx, plan, opts)
}

// AttackServer is the HTTP serving layer behind cmd/attackd: an LRU
// result cache and singleflight deduplication in front of the sweep
// evaluators, with NDJSON streaming (Accept: application/x-ndjson or
// ?stream=1 on the grid endpoints) and an async job API (/v1/jobs).
type AttackServer = attackd.Server

// AttackServerConfig configures NewAttackServer; the zero value uses
// the cmd/attackd defaults.
type AttackServerConfig = attackd.Config

// NewAttackServer builds the serving layer for embedding: mount its
// Handler() on any mux, and call DrainJobs during shutdown so running
// async jobs finish before the process exits.
func NewAttackServer(cfg AttackServerConfig) (*AttackServer, error) { return attackd.New(cfg) }

// ParseIntAxis parses a sweep axis over integers: a comma list ("7,9")
// or an inclusive lo:hi[:step] range ("10:50:10").
func ParseIntAxis(s string) ([]int, error) { return sweep.ParseInts(s) }

// ParseFloatAxis parses a sweep axis over floats: a comma list
// ("0.1,0.2") or an inclusive lo:hi:step range ("0.5:0.9:0.1").
func ParseFloatAxis(s string) ([]float64, error) { return sweep.ParseFloats(s) }

// SolverKinds lists the accepted SolverConfig.Kind values.
func SolverKinds() []string { return matrix.SolverKinds() }

// NewOverlay builds the n-cluster overlay view of a model, implementing
// Theorems 1 and 2 (competing Markov chains).
func NewOverlay(m *Model, n int) (*Overlay, error) { return overlay.New(m, n) }

// NewSimulator builds a Monte-Carlo simulator of the cluster chain with a
// deterministic root seed. Its RunBatch and RunManyBatch methods fan
// trajectories across a Pool with one PCG stream per trajectory, so the
// aggregated Summary is bit-identical on one worker or many.
func NewSimulator(m *Model, seed int64) (*Simulator, error) { return montecarlo.New(m, seed) }

// NewPool creates a worker pool of the given width; workers < 1 selects
// one worker per available CPU.
func NewPool(workers int) *Pool { return engine.New(workers) }

// ScenarioKeys lists the registered experiment scenarios (every figure,
// table, ablation and sweep of the reproduction) in registry order; run
// them with cmd/paperrepro.
func ScenarioKeys() []string { return experiments.Keys() }

// Rule1Holds evaluates the adversarial leave strategy (relation (2)) in
// state (s, x, y): whether a colluding adversary should trigger a
// voluntary core departure under protocol_k.
func Rule1Holds(p Params, s, x, y int) (bool, error) { return core.Rule1Holds(p, s, x, y) }

// HalfLife returns t½ = ln2/(1−d) for an identifier survival probability
// d (Section VI).
func HalfLife(d float64) (float64, error) { return combin.HalfLife(d) }

// LifetimeFromSurvival returns the incarnation lifetime L = 6.65·t½ such
// that 99% of identifiers expire within L (Section III-D calibration).
func LifetimeFromSurvival(d float64) (float64, error) { return combin.LifetimeFromSurvival(d) }

// SurvivalFromLifetime inverts LifetimeFromSurvival.
func SurvivalFromLifetime(l float64) (float64, error) { return combin.SurvivalFromLifetime(l) }
