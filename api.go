package targetedattacks

import (
	"targetedattacks/internal/combin"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/experiments"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/montecarlo"
	"targetedattacks/internal/overlay"
)

// Re-exported model types. The analytical engine lives in internal
// packages; these aliases form the stable public surface.
type (
	// Params are the model parameters (C, ∆, µ, d, k, ν).
	Params = core.Params
	// State is a cluster state (s, x, y).
	State = core.State
	// Class partitions the state space (safe, polluted, closed classes).
	Class = core.Class
	// Model is the cluster Markov-chain model.
	Model = core.Model
	// Analysis bundles the closed-form results for one initial
	// distribution.
	Analysis = core.Analysis
	// InitialDistribution selects one of the paper's initial
	// distributions (δ or β).
	InitialDistribution = core.InitialDistribution
	// Overlay is the n-cluster competing-chains view (Section VIII).
	Overlay = overlay.CompetingChains
	// OverlayPoint is one sample of the overlay proportions series.
	OverlayPoint = overlay.Point
	// Simulator is the Monte-Carlo cluster simulator.
	Simulator = montecarlo.Simulator
	// Trajectory is one simulated cluster lifetime.
	Trajectory = montecarlo.Trajectory
	// SimulationSummary aggregates Monte-Carlo runs.
	SimulationSummary = montecarlo.Summary
	// Pool is the worker-pool execution engine under every parallel
	// entry point: Monte-Carlo batches (Simulator.RunBatch and
	// Simulator.RunManyBatch) and experiment scenario sweeps. Results
	// are deterministic for a fixed seed, whatever the pool width.
	Pool = engine.Pool
	// SolverConfig selects the linear-solver backend of the closed-form
	// analytics: the exact dense LU (the zero value) or a sparse
	// iterative path ("sparse"/"bicgstab", "gs", "auto") that never
	// densifies the transition matrix and keeps state spaces with
	// thousands of transient states affordable.
	SolverConfig = matrix.SolverConfig
	// BuildOption tunes the construction of the transition matrix in
	// NewModel / NewModelWithSolver (see WithBuildPool).
	BuildOption = core.BuildOption
)

// Initial distributions of the paper (Section VII-A).
const (
	// DistributionDelta starts from (⌊∆/2⌋, 0, 0): no malicious peers.
	DistributionDelta = core.DistributionDelta
	// DistributionBeta starts with binomial malicious populations.
	DistributionBeta = core.DistributionBeta
)

// State classes of the partition of Ω (Section VI).
const (
	ClassSafe          = core.ClassSafe
	ClassPolluted      = core.ClassPolluted
	ClassSafeMerge     = core.ClassSafeMerge
	ClassSafeSplit     = core.ClassSafeSplit
	ClassPollutedMerge = core.ClassPollutedMerge
	ClassPollutedSplit = core.ClassPollutedSplit
)

// Absorbing class names as used in Analysis.Absorption.
const (
	ClassNameSafeMerge     = core.ClassNameSafeMerge
	ClassNameSafeSplit     = core.ClassNameSafeSplit
	ClassNamePollutedMerge = core.ClassNamePollutedMerge
	ClassNamePollutedSplit = core.ClassNamePollutedSplit
)

// DefaultParams returns the paper's evaluation configuration
// (C = 7, ∆ = 7, protocol_1, ν = 0.1).
func DefaultParams() Params { return core.DefaultParams() }

// NewModel validates p and builds the cluster model: its state space Ω
// and the exact transition matrix of the paper's Figure 2. Analyses use
// the exact dense LU solver; use NewModelWithSolver for the sparse path.
func NewModel(p Params, opts ...BuildOption) (*Model, error) { return core.New(p, opts...) }

// NewModelWithSolver is NewModel with an explicit linear-solver backend,
// e.g. SolverConfig{Kind: "sparse"} for the iterative CSR path that makes
// large C/∆ state spaces affordable.
func NewModelWithSolver(p Params, sc SolverConfig, opts ...BuildOption) (*Model, error) {
	return core.NewWithSolver(p, sc, opts...)
}

// WithBuildPool fans the per-row construction of the transition matrix
// across pool. Rows are emitted into row-local builders and concatenated
// deterministically, so the resulting matrix is bit-identical to a serial
// build for any pool width; at C = ∆ ≥ 40 (tens of thousands of states)
// construction parallelism is what keeps model creation interactive.
func WithBuildPool(pool *Pool) BuildOption { return core.WithBuildPool(pool) }

// SolverKinds lists the accepted SolverConfig.Kind values.
func SolverKinds() []string { return matrix.SolverKinds() }

// NewOverlay builds the n-cluster overlay view of a model, implementing
// Theorems 1 and 2 (competing Markov chains).
func NewOverlay(m *Model, n int) (*Overlay, error) { return overlay.New(m, n) }

// NewSimulator builds a Monte-Carlo simulator of the cluster chain with a
// deterministic root seed. Its RunBatch and RunManyBatch methods fan
// trajectories across a Pool with one PCG stream per trajectory, so the
// aggregated Summary is bit-identical on one worker or many.
func NewSimulator(m *Model, seed int64) (*Simulator, error) { return montecarlo.New(m, seed) }

// NewPool creates a worker pool of the given width; workers < 1 selects
// one worker per available CPU.
func NewPool(workers int) *Pool { return engine.New(workers) }

// ScenarioKeys lists the registered experiment scenarios (every figure,
// table, ablation and sweep of the reproduction) in registry order; run
// them with cmd/paperrepro.
func ScenarioKeys() []string { return experiments.Keys() }

// Rule1Holds evaluates the adversarial leave strategy (relation (2)) in
// state (s, x, y): whether a colluding adversary should trigger a
// voluntary core departure under protocol_k.
func Rule1Holds(p Params, s, x, y int) (bool, error) { return core.Rule1Holds(p, s, x, y) }

// HalfLife returns t½ = ln2/(1−d) for an identifier survival probability
// d (Section VI).
func HalfLife(d float64) (float64, error) { return combin.HalfLife(d) }

// LifetimeFromSurvival returns the incarnation lifetime L = 6.65·t½ such
// that 99% of identifiers expire within L (Section III-D calibration).
func LifetimeFromSurvival(d float64) (float64, error) { return combin.LifetimeFromSurvival(d) }

// SurvivalFromLifetime inverts LifetimeFromSurvival.
func SurvivalFromLifetime(l float64) (float64, error) { return combin.SurvivalFromLifetime(l) }
