module targetedattacks

go 1.24
