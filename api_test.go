package targetedattacks

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	params := DefaultParams()
	params.Mu = 0.2
	params.D = 0.9
	model, err := NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := model.AnalyzeNamed(DistributionDelta, 2)
	if err != nil {
		t.Fatal(err)
	}
	if analysis.ExpectedSafeTime <= 0 {
		t.Error("E(T_S) must be positive")
	}
	var sum float64
	for _, p := range analysis.Absorption {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("absorption probabilities sum to %v", sum)
	}
}

func TestFacadeOverlay(t *testing.T) {
	model, err := NewModel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewOverlay(model, 500)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := ov.ProportionSeries(model.InitialDelta(), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Safe != 1 {
		t.Errorf("initial safe proportion %v, want 1", pts[0].Safe)
	}
}

func TestFacadeSimulator(t *testing.T) {
	params := DefaultParams()
	params.Mu = 0.1
	params.D = 0.5
	model, err := NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(model, 42)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sim.RunMany(model.InitialDelta(), 500, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 500 {
		t.Errorf("Runs = %d", sum.Runs)
	}
}

func TestFacadeBatchSimulation(t *testing.T) {
	params := DefaultParams()
	params.Mu = 0.2
	params.D = 0.8
	model, err := NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	batch := func(workers int) *SimulationSummary {
		sim, err := NewSimulator(model, 11)
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sim.RunManyBatch(context.Background(), NewPool(workers), model.InitialDelta(), 400, 100000)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	serial, parallel := batch(1), batch(8)
	if serial.Runs != 400 || parallel.Runs != 400 {
		t.Fatalf("Runs = %d/%d", serial.Runs, parallel.Runs)
	}
	if serial.SafeTime.Mean() != parallel.SafeTime.Mean() {
		t.Error("facade batch is not deterministic across pool widths")
	}
}

func TestFacadeScenarioKeys(t *testing.T) {
	keys := ScenarioKeys()
	if len(keys) < 12 {
		t.Fatalf("only %d scenarios registered: %v", len(keys), keys)
	}
	seen := map[string]bool{}
	for _, key := range keys {
		if seen[key] {
			t.Errorf("duplicate scenario key %q", key)
		}
		seen[key] = true
	}
	for _, want := range []string{"fig3", "mc", "nusweep", "stress9"} {
		if !seen[want] {
			t.Errorf("scenario %q missing from facade listing", want)
		}
	}
}

func TestFacadeRule1(t *testing.T) {
	p := DefaultParams() // k = 1
	fires, err := Rule1Holds(p, 3, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fires {
		t.Error("Rule 1 must never fire for k=1")
	}
}

func TestFacadeLifetimeHelpers(t *testing.T) {
	l, err := LifetimeFromSurvival(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-46.05) > 0.05 {
		t.Errorf("L(0.9) = %v, want ≈46.05 (paper Figure 5)", l)
	}
	d, err := SurvivalFromLifetime(l)
	if err != nil || math.Abs(d-0.9) > 1e-9 {
		t.Errorf("round trip d = %v err %v", d, err)
	}
	th, err := HalfLife(0.9)
	if err != nil || math.Abs(th-math.Ln2/0.1) > 1e-9 {
		t.Errorf("HalfLife = %v err %v", th, err)
	}
}

func TestFacadeConstantsDistinct(t *testing.T) {
	names := map[string]bool{
		ClassNameSafeMerge:     true,
		ClassNameSafeSplit:     true,
		ClassNamePollutedMerge: true,
		ClassNamePollutedSplit: true,
	}
	if len(names) != 4 {
		t.Error("absorbing class names must be distinct")
	}
	if ClassSafe == ClassPolluted {
		t.Error("classes must be distinct")
	}
	if DistributionDelta == DistributionBeta {
		t.Error("distributions must be distinct")
	}
}

func TestFacadeSparseSolver(t *testing.T) {
	params := DefaultParams()
	params.Mu = 0.2
	params.D = 0.9
	dense, err := NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewModelWithSolver(params, SolverConfig{Kind: "sparse"})
	if err != nil {
		t.Fatal(err)
	}
	a, err := dense.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sparse.AnalyzeNamed(DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.ExpectedSafeTime-b.ExpectedSafeTime) > 1e-9*(1+a.ExpectedSafeTime) {
		t.Errorf("E(T_S): dense %v vs sparse %v", a.ExpectedSafeTime, b.ExpectedSafeTime)
	}
	if len(SolverKinds()) == 0 {
		t.Error("SolverKinds is empty")
	}
	if _, err := NewModelWithSolver(params, SolverConfig{Kind: "qr"}); err == nil {
		t.Error("unknown solver kind: want error")
	}
}

func TestFacadeParallelBuild(t *testing.T) {
	params := DefaultParams()
	params.Mu = 0.2
	params.D = 0.9
	serial, err := NewModel(params)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewModelWithSolver(params, SolverConfig{Kind: "sparse"}, WithBuildPool(NewPool(8)))
	if err != nil {
		t.Fatal(err)
	}
	if !serial.TransitionMatrix().Equal(parallel.TransitionMatrix()) {
		t.Error("WithBuildPool changed the transition matrix through the facade")
	}
	if !slices.Contains(ScenarioKeys(), "huge") {
		t.Error("huge scenario missing from facade listing")
	}
}

func TestFacadeAttackServer(t *testing.T) {
	srv, err := NewAttackServer(AttackServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"c":7,"delta":7,"k":1,"mu":0.2,"d":0.9,"nu":0.1}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze through the facade: status %d", resp.StatusCode)
	}
	if err := srv.DrainJobs(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
