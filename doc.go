// Package targetedattacks is a Go reproduction of
//
//	E. Anceaume, B. Sericola, R. Ludinard, F. Tronel.
//	"Modeling and Evaluating Targeted Attacks in Large Scale Dynamic
//	Systems", Proc. 41st IEEE/IFIP DSN, 2011.
//
// The paper studies how a cluster-based structured overlay (PeerCube
// style) resists targeted attacks when it combines (i) core/spare role
// separation inside clusters, (ii) randomized robust join/leave/merge/
// split operations — the protocol_k family — and (iii) induced churn
// through limited-lifetime peer identifiers. A cluster is *polluted* when
// strictly more than c = ⌊(C−1)/3⌋ of its C core members are malicious.
//
// # Layers
//
// The package exposes these layers:
//
//   - The model registry (internal/chainmodel): the analytic stack is
//     model-agnostic. A chainmodel.Family declares a state enumeration,
//     a sparse row emitter, a transient A/B split with named absorbing
//     classes, and the structure a parameter sweep can exploit (shared-
//     table groups, provable cell-equality signatures, warm-start
//     lanes). Matrix construction (chunked, bit-identical for any
//     worker count), the full closed-form suite (AnalyzeChain), the
//     sweep planner and the HTTP serving layer are all written against
//     this interface. Two families are registered: "targeted-attack"
//     (the paper's model, the default) and "apt-compromise" (a
//     multi-stage compromise campaign on a triangular footholds ×
//     entrenched state space). ModelFamilies lists them,
//     LookupModelFamily resolves one, AnalyzeModel and
//     EvaluateModelSweep analyze them; see the README for the
//     adding-a-third-family walkthrough.
//
//   - The exact analytical model: the absorbing Markov chain over states
//     (s, x, y) — spare size, malicious core members, malicious spare
//     members — with the paper's adversarial strategy (Rules 1 and 2,
//     Property 1) encoded in its transition matrix, and the closed-form
//     results of Sections VI-VIII: expected safe/polluted times,
//     successive sojourn times, absorption probabilities, and the
//     overlay-level proportions of safe/polluted clusters under n
//     competing chains.
//
//   - The sparse linear-solver layer beneath the closed forms
//     (internal/matrix): the transition matrix lives in CSR form from
//     construction to solve; internal/markov carves its transient and
//     absorbing blocks directly out of the CSR and routes every relation
//     through a pluggable Solver interface. The dense LU backend is the
//     exact reference; the iterative backends (BiCGSTAB, Gauss–Seidel,
//     residual-controlled) never materialize a dense matrix, which is
//     what makes state spaces with thousands of transient states — C=∆
//     up to 25 and beyond — affordable. Factorizations answer batched
//     multi-RHS solves (SolveMat/SolveMatLeft), which the sojourn
//     recursions exploit to issue one batched solve per block per
//     iteration. Select a backend with NewModelWithSolver or the CLIs'
//     -solver/-tol flags.
//
//   - The preconditioner and warm-start layer inside it: as the
//     identifier-survival probability d → 1 the transient blocks mix
//     slowly and plain BiCGSTAB iteration counts blow up. The "ilu"
//     backend factors I−M once per block with ILU(0) (zero fill-in, so
//     CSR-sized memory) and uses it as the BiCGSTAB preconditioner in
//     both solve orientations; the "auto" backend probes each block's
//     mixing speed (matrix.MixingEstimate) and picks ILU for slow
//     blocks, falling back stickily to dense LU — with the reason
//     recorded in Analysis.Solver — if an iterative solve ever fails.
//     Every Factorization also accepts initial guesses
//     (SolveVecFrom and variants); markov.Chain records its converged
//     vectors as a WarmStart so a neighboring parameter cell can seed
//     its own solves from them. Choosing a solver: "dense" is the exact
//     LU reference (O(n²) memory — small grids only), "bicgstab" (alias
//     "sparse") the CSR-only default at scale, "gs" a simple
//     Gauss–Seidel alternative, "ilu" the d → 1 regime, and "auto" the
//     safe default for unknown grids; see the README table.
//
//   - The parallel build pipeline above it: transition-matrix rows are
//     constructed in independent chunks through row-local emitters and
//     concatenated deterministically in row order, so the CSR is
//     bit-identical for any worker count; the hypergeometric maintenance
//     kernel is memoized per (C, ∆, k) and shared across grid cells.
//     Thread a pool in with WithBuildPool (or -buildworkers); the huge
//     scenario evaluates C=∆ up to 50 (|Ω| ≈ 68k states) end-to-end in
//     seconds on this path.
//
//   - The amortized sweep evaluator above the models (internal/sweep):
//     sweep.EvaluateModel runs any family's grid through a three-pass
//     planner driven by the family's declared structure — cells group
//     on GroupKey and share the immutable tables NewShared builds,
//     cells with equal Signatures are provably the same chain and are
//     solved once, and consecutive classes with equal LaneKeys form
//     warm-start lanes whose iterative solves seed from their
//     neighbor's converged vectors. Lanes (not chains) fan across the
//     pool, so results and iteration counts are bit-identical for any
//     worker width. For the paper model a SweepPlan over
//     (C, ∆, k, µ, d, ν) runs on this path (EvaluateSweep): geometry
//     groups share one state space, one memoized maintenance kernel
//     and one Rule 1 gain table per protocol, and ν dedups by its gain
//     cut — a 64-cell ν×d grid at C=∆=40 evaluates ≈ 8× faster than
//     independent per-cell analyses on one core (BenchmarkSweepGrid).
//
//   - The serving layer (cmd/attackd, internal/attackd): a long-lived
//     HTTP process exposing POST /v1/analyze (one cell) and
//     POST /v1/sweep (a grid) for every registered family — the
//     request's "model" field selects one, unknown names get a 400
//     listing the registry — with an LRU result cache keyed by
//     canonical parameters (model name included), singleflight
//     deduplication of concurrent identical requests, NDJSON streaming
//     of grids (one cell per line as it is computed, via ?stream=1 or
//     Accept: application/x-ndjson), an async job API (/v1/jobs:
//     submit, poll progress, fetch or stream results, cancel),
//     /healthz, Prometheus-format /metrics with per-model evaluation
//     counters, and graceful drain (requests and jobs) on
//     SIGINT/SIGTERM. cmd/attackload is its load harness.
//
//   - The observability core beneath the serving layer (internal/obs):
//     a dependency-free package providing lock-free log-spaced latency
//     histograms with Prometheus text rendering and a strict exposition
//     parser for self-checks, a request-scoped trace abstraction (W3C
//     traceparent ingest and propagation, in-process spans, per-stage
//     aggregation) threaded through context.Context, and trace-aware
//     log/slog construction. The numeric layers accept an optional
//     Observer so the serving path can attribute time to parse, cache,
//     space, kernel, matrix, plan, build, solve, simulate and encode
//     stages; tracing is pay-for-use, costing a nil check when no trace
//     rides the context.
//
//   - A Monte-Carlo simulator of the same chain for cross-validation.
//
//   - A full discrete-event simulation of the overlay system itself:
//     peers with certificate-derived expiring identifiers, clusters on a
//     hypercube topology, Byzantine-tolerant core maintenance, and a
//     colluding adversary executing the paper's targeted-attack strategy.
//
//   - The execution engine beneath all of them (internal/engine): a
//     worker pool that fans independent units of work — Monte-Carlo
//     trajectories, parameter-grid cells, whole experiment scenarios —
//     across CPUs while staying deterministic.
//
// # Deterministic parallelism
//
// Every randomized task derives its own math/rand/v2 PCG stream from a
// root seed and the task's global index, never sharing a generator. A
// Monte-Carlo batch (Simulator.RunBatch, Simulator.RunManyBatch) or a
// parallel sweep therefore produces bit-identical results on one worker
// or many; NewPool(workers) chooses the width (0 = one per CPU).
//
// # Scenario registry
//
// The paper's evaluation — every figure, table, ablation, validation and
// sweep — is registered as a named scenario in internal/experiments.
// ScenarioKeys lists them; cmd/paperrepro executes any subset
// concurrently with -workers and -seed flags. The grid scenarios
// (S1-S5) are expressed as SweepPlans and run through EvaluateSweep, so
// they inherit the shared-structure amortization and cell
// deduplication; the apt scenario (S7) runs the second model family
// through EvaluateModelSweep the same way; every scenario honors
// Env.Solver, Env.BuildPool and the worker pool uniformly (the
// registry test asserts it key by key).
//
// # Quick start
//
//	params := targetedattacks.DefaultParams() // C=7, ∆=7, protocol_1
//	params.Mu = 0.2                           // 20% of peers malicious
//	params.D = 0.9                            // identifier survival per time unit
//	model, err := targetedattacks.NewModel(params)
//	if err != nil { ... }
//	analysis, err := model.AnalyzeNamed(targetedattacks.DistributionDelta, 2)
//	if err != nil { ... }
//	fmt.Println("expected events before pollution ends:",
//		analysis.ExpectedSafeTime, analysis.ExpectedPollutedTime)
//
//	// Cross-validate in parallel, deterministically:
//	sim, err := targetedattacks.NewSimulator(model, 1)
//	if err != nil { ... }
//	sum, err := sim.RunManyBatch(ctx, targetedattacks.NewPool(0),
//		model.InitialDelta(), 100000, 1_000_000)
//
//	// Evaluate a whole grid with shared structure (ν×d surface):
//	rs, err := targetedattacks.EvaluateSweep(ctx, targetedattacks.SweepPlan{
//		C: []int{40}, Delta: []int{40}, K: []int{1},
//		Mu: []float64{0.2},
//		D:  []float64{0.5, 0.6, 0.7, 0.8},
//		Nu: []float64{0.05, 0.1, 0.2},
//	}, targetedattacks.SweepOptions{
//		Pool:   targetedattacks.NewPool(0),
//		Solver: targetedattacks.SolverConfig{Kind: "bicgstab"},
//	})
//
//	// Any registered family runs through the same engine; e.g. an APT
//	// compromise campaign with warm-started stealth lanes:
//	fam, _ := targetedattacks.LookupModelFamily("apt-compromise")
//	cells, err := fam.ParsePlan([]byte(
//		`{"n":"20","theta":"0.3,0.6","phi":"0.4","detect":"0.5,0.8","rho":"0:0.5:0.25"}`))
//	if err != nil { ... }
//	mrs, err := targetedattacks.EvaluateModelSweep(ctx,
//		targetedattacks.ModelSweepPlan{Family: fam, Cells: cells},
//		targetedattacks.ModelSweepOptions{
//			Pool:      targetedattacks.NewPool(0),
//			Solver:    targetedattacks.SolverConfig{Kind: "bicgstab"},
//			WarmStart: true,
//		})
//
// Or serve it: `go run ./cmd/attackd` starts the HTTP layer
// (POST /v1/analyze, POST /v1/sweep — buffered, streamed as NDJSON, or
// async via /v1/jobs — plus /healthz and /metrics; the "model" request
// field selects any registered family).
//
// See the examples/ directory for runnable programs and cmd/paperrepro
// for the harness that regenerates every table and figure of the paper.
package targetedattacks
