// Package targetedattacks is a Go reproduction of
//
//	E. Anceaume, B. Sericola, R. Ludinard, F. Tronel.
//	"Modeling and Evaluating Targeted Attacks in Large Scale Dynamic
//	Systems", Proc. 41st IEEE/IFIP DSN, 2011.
//
// The paper studies how a cluster-based structured overlay (PeerCube
// style) resists targeted attacks when it combines (i) core/spare role
// separation inside clusters, (ii) randomized robust join/leave/merge/
// split operations — the protocol_k family — and (iii) induced churn
// through limited-lifetime peer identifiers. A cluster is *polluted* when
// strictly more than c = ⌊(C−1)/3⌋ of its C core members are malicious.
//
// The package exposes three layers:
//
//   - The exact analytical model: the absorbing Markov chain over states
//     (s, x, y) — spare size, malicious core members, malicious spare
//     members — with the paper's adversarial strategy (Rules 1 and 2,
//     Property 1) encoded in its transition matrix, and the closed-form
//     results of Sections VI-VIII: expected safe/polluted times,
//     successive sojourn times, absorption probabilities, and the
//     overlay-level proportions of safe/polluted clusters under n
//     competing chains.
//
//   - A Monte-Carlo simulator of the same chain for cross-validation.
//
//   - A full discrete-event simulation of the overlay system itself:
//     peers with certificate-derived expiring identifiers, clusters on a
//     hypercube topology, Byzantine-tolerant core maintenance, and a
//     colluding adversary executing the paper's targeted-attack strategy.
//
// # Quick start
//
//	params := targetedattacks.DefaultParams() // C=7, ∆=7, protocol_1
//	params.Mu = 0.2                           // 20% of peers malicious
//	params.D = 0.9                            // identifier survival per time unit
//	model, err := targetedattacks.NewModel(params)
//	if err != nil { ... }
//	analysis, err := model.AnalyzeNamed(targetedattacks.DistributionDelta, 2)
//	if err != nil { ... }
//	fmt.Println("expected events before pollution ends:",
//		analysis.ExpectedSafeTime, analysis.ExpectedPollutedTime)
//
// See the examples/ directory for runnable programs and cmd/paperrepro
// for the harness that regenerates every table and figure of the paper.
package targetedattacks
