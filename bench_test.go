package targetedattacks

import (
	"context"
	"fmt"
	"testing"

	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/experiments"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/montecarlo"
)

// benchPool is the shared per-CPU pool the experiment benchmarks fan out
// on, mirroring how cmd/paperrepro runs them.
var benchPool = engine.New(0)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (DESIGN.md experiment index E1-E7) plus this reproduction's
// ablations (A1-A3). Each benchmark iteration produces the complete
// artifact at the paper's parameters; cmd/paperrepro prints the same rows.

// BenchmarkFigure1StateSpace regenerates the state-space census (E1).
func BenchmarkFigure1StateSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(7, 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2TransitionMatrix regenerates the transition-matrix
// construction for protocol_1 … protocol_C (E2).
func BenchmarkFigure2TransitionMatrix(b *testing.B) {
	cfg := experiments.DefaultFigure2Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3ExpectedTimes regenerates the four panels of Figure 3
// (E3): E(T_S^k), E(T_P^k) over µ × d × k × α.
func BenchmarkFigure3ExpectedTimes(b *testing.B) {
	cfg := experiments.DefaultFigure3Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1HighSurvival regenerates Table I (E4).
func BenchmarkTable1HighSurvival(b *testing.B) {
	cfg := experiments.DefaultTable1Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2SuccessiveSojourns regenerates Table II (E5).
func BenchmarkTable2SuccessiveSojourns(b *testing.B) {
	cfg := experiments.DefaultTable2Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Absorption regenerates the two panels of Figure 4 (E6).
func BenchmarkFigure4Absorption(b *testing.B) {
	cfg := experiments.DefaultFigure4Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5OverlayProportions regenerates the two panels of
// Figure 5 (E7): Theorem 2 over 100000 events for n ∈ {500, 1500},
// d ∈ {30%, 90%}.
func BenchmarkFigure5OverlayProportions(b *testing.B) {
	cfg := experiments.DefaultFigure5Config()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure5(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationNuSensitivity sweeps the Rule 1 threshold ν (A1).
func BenchmarkAblationNuSensitivity(b *testing.B) {
	cfg := experiments.DefaultAblationNuConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationNu(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAllK sweeps protocol_k for every k = 1…C (A2).
func BenchmarkAblationAllK(b *testing.B) {
	cfg := experiments.DefaultAblationKConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationK(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkValidationMonteCarlo cross-validates closed forms against
// simulation (A3) at a reduced run count (the full 20000-run validation
// is in cmd/paperrepro).
func BenchmarkValidationMonteCarlo(b *testing.B) {
	cfg := experiments.DefaultValidationConfig()
	cfg.Runs = 2000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Validation(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystemOverlaySim runs the full agent-based overlay under a
// targeted attack (A4) at a reduced event count.
func BenchmarkSystemOverlaySim(b *testing.B) {
	cfg := experiments.DefaultSystemSimConfig()
	cfg.Events = 5000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.SystemSim(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLookupAvailability measures end-to-end lookup availability
// under attack (A5) at reduced scale.
func BenchmarkLookupAvailability(b *testing.B) {
	cfg := experiments.DefaultLookupConfig()
	cfg.Events = 2000
	cfg.Trials = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Lookup(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatch tracks the serial→parallel Monte-Carlo speedup on the
// paper's C=∆=7 model: the same 4000-trajectory batch (bit-identical
// output by construction) across pool widths. On a multi-core machine the
// workers=8 case should run ≥ 2× faster than workers=1; on a single-core
// runner the widths tie, which is itself evidence the engine adds little
// overhead.
func BenchmarkRunBatch(b *testing.B) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	alpha := m.InitialDelta()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := engine.New(workers)
			sim, err := montecarlo.New(m, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunManyBatch(context.Background(), pool, alpha, 4000, 1_000_000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildTransitionMatrix tracks the serial→parallel construction
// speedup at the S3/S4 scale points (C=∆=25: 9126 states; C=∆=40: 35301
// states). The serial and parallel paths produce bit-identical CSRs (see
// the core equivalence property test), so this measures pure construction
// throughput: row-local emitters with no shared builder, deterministic
// row-order assembly, and the memoized per-(C,∆,k) maintenance kernel. CI
// gates on these timings via benchstat (>20% regression fails the build);
// on a multi-core runner the parallel case at C=∆=40 should run ≥ 3×
// faster than serial, while a single-core tie bounds the engine overhead.
func BenchmarkBuildTransitionMatrix(b *testing.B) {
	for _, size := range []int{25, 40} {
		p := core.Params{C: size, Delta: size, Mu: 0.2, D: 0.8, K: 1, Nu: 0.1}
		b.Run(fmt.Sprintf("size=%d/serial", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BuildTransitionMatrix(p); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("size=%d/parallel", size), func(b *testing.B) {
			pool := engine.New(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.BuildTransitionMatrix(p, core.WithBuildPool(pool)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelConstruction measures building the 288-state transition
// matrix alone (the kernel under every experiment).
func BenchmarkModelConstruction(b *testing.B) {
	p := core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 7, Nu: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.New(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyze measures one full closed-form analysis per solver
// backend at the 550-state stress9 size (C=∆=9): the dense LU reference
// against the sparse iterative path. The sparse path runs ≥ 5× faster
// here and the gap widens with the state space (see the
// "large" scenario for C=∆ up to 25, where dense is no longer viable).
func BenchmarkAnalyze(b *testing.B) {
	p := core.Params{C: 9, Delta: 9, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1}
	for _, kind := range []string{"dense", "sparse"} {
		b.Run(kind, func(b *testing.B) {
			m, err := core.NewWithSolver(p, matrix.SolverConfig{Kind: kind})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := m.AnalyzeNamed(core.DistributionDelta, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzePaperSize keeps the original C=∆=7 measurement (the
// kernel under every paper-exact experiment).
func BenchmarkAnalyzePaperSize(b *testing.B) {
	m, err := core.New(core.Params{C: 7, Delta: 7, Mu: 0.2, D: 0.9, K: 1, Nu: 0.1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.AnalyzeNamed(core.DistributionDelta, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeClusterSweep tracks the sparse pipeline at scale: the
// full S3 sweep (C=∆ ∈ {16, 20, 25}, up to 8424 transient states per
// solve) on a per-CPU pool.
func BenchmarkLargeClusterSweep(b *testing.B) {
	cfg := experiments.DefaultLargeClusterConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LargeCluster(context.Background(), benchPool, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
