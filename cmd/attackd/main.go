// Command attackd serves the targeted-attack analytics over HTTP: a
// long-lived process that answers single-cell analyses and whole
// parameter-grid sweeps from one warm state, with an LRU result cache
// and singleflight deduplication in front of the evaluator.
//
// Usage:
//
//	attackd [-addr :8080] [-workers 0] [-solver bicgstab|gs|ilu|dense|auto]
//	        [-tol 1e-12] [-cache 4096] [-maxcells 4096] [-maxstates 200000]
//	        [-maxsojourns 1024] [-maxsimcells 256] [-maxsimevents 16777216]
//	        [-maxjobs 64] [-jobttl 15m] [-shutdown-timeout 10s]
//	        [-log-level info] [-log-format text|json] [-slowreq 1s]
//	        [-debug-addr 127.0.0.1:6060]
//
// Endpoints:
//
//	POST /v1/analyze  one cell: {"c":7,"delta":7,"k":1,"mu":0.2,"d":0.9,"nu":0.1}
//	POST /v1/sweep    a grid:   {"c":"7","delta":"7","k":"1","mu":"0.2",
//	                             "d":"0.5:0.9:0.1","nu":"0.05,0.1"}
//	POST /v1/simsweep a simulation grid: {"strategies":"paper,passive",
//	                             "mu":"0.1,0.2","sizes":"2000","events":2000,
//	                             "replicas":2,"seed":7}
//	POST /v1/jobs     async submit: any sweep/simsweep body plus
//	                  {"kind":"sweep"|"simsweep"} → 202 with a job ID
//	GET  /v1/jobs     list known jobs
//	GET  /v1/jobs/{id}         poll state and cells done/total
//	GET  /v1/jobs/{id}/result  fetch (or ?stream=1) a finished result
//	DELETE /v1/jobs/{id}       cancel the evaluation
//	GET  /healthz     liveness
//	GET  /metrics     Prometheus text: requests, cache hit rate, in-flight,
//	                  solver iterations and sparse-to-dense fallbacks,
//	                  simulation evaluations and simulated events, streamed
//	                  cells and job states
//
// The grid endpoints stream NDJSON — one cell per line as it is
// computed, then a {"summary":{...}} line — when the request carries
// `Accept: application/x-ndjson` or `?stream=1`.
//
// POST bodies accept optional "solver", "tol", "max_iter" and
// "workers" fields overriding the server's defaults for that request.
// Sweep evaluations warm-start neighboring grid cells' iterative
// solves; the response reports the iterations spent.
//
// Axis expressions accept comma lists ("0.1,0.2") and inclusive
// lo:hi:step ranges ("0.5:0.9:0.1"). SIGINT/SIGTERM drain in-flight
// requests and running jobs for up to -shutdown-timeout before the
// process exits.
//
// Observability: every request is traced (W3C traceparent in and out;
// opt into a per-stage timing breakdown with "timings": true in any
// analysis or sweep body), /metrics carries request- and stage-latency
// histograms plus Go runtime gauges, requests slower than -slowreq log
// their span tree at warn level, and -debug-addr exposes net/http/pprof
// and /debug/vars on a second, private listener.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"targetedattacks/internal/attackd"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "attackd:", err)
		os.Exit(1)
	}
}

// run parses flags, serves until ctx is cancelled, then drains
// gracefully. When ready is non-nil the bound address is sent to it
// once the listener accepts connections (the smoke tests use this with
// -addr 127.0.0.1:0).
func run(ctx context.Context, args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("attackd", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		workers     = fs.Int("workers", 0, "evaluation pool width (0 = one per CPU)")
		solver      = fs.String("solver", "", "linear-solver backend: "+strings.Join(matrix.SolverKinds(), ", ")+" (default bicgstab)")
		tol         = fs.Float64("tol", 0, "iterative solver residual tolerance (0 = default)")
		cacheSize   = fs.Int("cache", attackd.DefaultCacheSize, "LRU result-cache entries (negative disables)")
		maxCells    = fs.Int("maxcells", attackd.DefaultMaxCells, "maximum grid cells per sweep request")
		maxStates   = fs.Int("maxstates", attackd.DefaultMaxStates, "maximum |Ω| per cell")
		maxSojourns = fs.Int("maxsojourns", attackd.DefaultMaxSojourns, "maximum sojourn expectations per request")
		maxSimCells = fs.Int("maxsimcells", attackd.DefaultMaxSimCells, "maximum grid cells per simulation-sweep request")
		maxSimEvts  = fs.Int64("maxsimevents", attackd.DefaultMaxSimEventBudget, "maximum cells×replicas×events per simulation-sweep request")
		maxJobs     = fs.Int("maxjobs", attackd.DefaultMaxJobs, "maximum async jobs held in memory (negative disables the job API)")
		jobTTL      = fs.Duration("jobttl", attackd.DefaultJobTTL, "how long finished jobs stay pollable")
		drain       = fs.Duration("shutdown-timeout", 10*time.Second, "graceful-shutdown drain budget")
		logLevel    = fs.String("log-level", "info", "log verbosity: debug, info, warn, error")
		logFormat   = fs.String("log-format", "text", "log encoding: text or json")
		slowReq     = fs.Duration("slowreq", attackd.DefaultSlowRequest, "log requests slower than this at warn level, with their span tree")
		debugAddr   = fs.String("debug-addr", "", "optional second listener for net/http/pprof and /debug/vars (keep it private)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		return err
	}
	logger, err := obs.NewLogger(os.Stderr, *logFormat, level)
	if err != nil {
		return err
	}
	srv, err := attackd.New(attackd.Config{
		Pool:              engine.New(*workers),
		Solver:            matrix.SolverConfig{Kind: *solver, Tol: *tol},
		CacheSize:         *cacheSize,
		MaxCells:          *maxCells,
		MaxStates:         *maxStates,
		MaxSojourns:       *maxSojourns,
		MaxSimCells:       *maxSimCells,
		MaxSimEventBudget: *maxSimEvts,
		MaxJobs:           *maxJobs,
		JobTTL:            *jobTTL,
		Logger:            logger,
		SlowRequest:       *slowReq,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		fmt.Fprintf(out, "attackd: debug listener (pprof, expvar) on %s\n", dln.Addr())
		go http.Serve(dln, debugMux()) //nolint:errcheck // dies with the process
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "attackd: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(out, "attackd: draining for up to %s\n", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// In-flight async jobs share the drain budget: they finish (and stay
	// pollable until the process exits) rather than dying mid-grid.
	if err := srv.DrainJobs(drainCtx); err != nil {
		return fmt.Errorf("draining jobs: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// debugMux wires the runtime-introspection handlers that the default
// ServeMux would have picked up had attackd used it: pprof profiles and
// the expvar JSON dump. They live on their own listener so profiling
// endpoints are never reachable through the public -addr.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
