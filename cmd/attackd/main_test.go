package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"targetedattacks/internal/core"
	"targetedattacks/internal/matrix"
)

// startServer boots the full binary path (flag parsing, listener, HTTP
// stack) on an ephemeral port and returns its base URL plus a stopper
// that triggers and awaits graceful shutdown.
func startServer(t *testing.T, args ...string) (string, func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	errc := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errc <- run(ctx, append([]string{"-addr", "127.0.0.1:0"}, args...), &out, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, func() error {
			cancel()
			select {
			case err := <-errc:
				return err
			case <-time.After(10 * time.Second):
				return fmt.Errorf("graceful shutdown timed out")
			}
		}
	case err := <-errc:
		t.Fatalf("server failed to start: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}
	panic("unreachable")
}

// TestSmokeAnalyzeAgainstPaperCell is the end-to-end smoke: start the
// server, query one cell of the paper's Table I grid, and compare
// against the in-process closed form the paperrepro tables print.
func TestSmokeAnalyzeAgainstPaperCell(t *testing.T) {
	url, stop := startServer(t)
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("graceful shutdown: %v", err)
		}
	}()

	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Table I cell: µ = 20%, d = 0.95 (k=1, C=∆=7, α=δ).
	body := `{"c":7,"delta":7,"k":1,"mu":0.2,"d":0.95,"nu":0.1}`
	resp, err = http.Post(url+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze = %d", resp.StatusCode)
	}
	var got struct {
		Analysis struct {
			ExpectedSafeTime     float64 `json:"expected_safe_time"`
			ExpectedPollutedTime float64 `json:"expected_polluted_time"`
		} `json:"analysis"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	p := core.Params{C: 7, Delta: 7, K: 1, Mu: 0.2, D: 0.95, Nu: 0.1}
	m, err := core.NewWithSolver(p, matrix.SolverConfig{Kind: "bicgstab"})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.AnalyzeNamed(core.DistributionDelta, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Analysis.ExpectedSafeTime-want.ExpectedSafeTime) > 1e-12*want.ExpectedSafeTime {
		t.Errorf("E(T_S) over HTTP = %v, closed form = %v", got.Analysis.ExpectedSafeTime, want.ExpectedSafeTime)
	}
	if math.Abs(got.Analysis.ExpectedPollutedTime-want.ExpectedPollutedTime) > 1e-9 {
		t.Errorf("E(T_P) over HTTP = %v, closed form = %v", got.Analysis.ExpectedPollutedTime, want.ExpectedPollutedTime)
	}
}

func TestSmokeSweepEndpoint(t *testing.T) {
	url, stop := startServer(t, "-workers", "2", "-solver", "bicgstab")
	defer stop()
	body := `{"c":"7","delta":"7","k":"1","mu":"0.2","d":"0.5,0.9","nu":"0.05,0.5"}`
	resp, err := http.Post(url+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep = %d", resp.StatusCode)
	}
	var got struct {
		Cells     []json.RawMessage `json:"cells"`
		Evaluated int               `json:"evaluated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Cells) != 4 || got.Evaluated != 2 {
		t.Errorf("cells=%d evaluated=%d, want 4 cells / 2 evaluations (ν dedups at k=1)", len(got.Cells), got.Evaluated)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := run(ctx, []string{"-solver", "bogus"}, &bytes.Buffer{}, nil); err == nil {
		t.Error("bogus solver: want error")
	}
	if err := run(ctx, []string{"-addr", "256.256.256.256:99999"}, &bytes.Buffer{}, nil); err == nil {
		t.Error("bad addr: want error")
	}
}
