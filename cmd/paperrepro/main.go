// Command paperrepro regenerates every table and figure of the evaluation
// sections of the DSN 2011 targeted-attack paper (see DESIGN.md for the
// experiment index) and this reproduction's ablations. Text renderings go
// to stdout; with -outdir, each artifact is also written as CSV.
//
// Usage:
//
//	paperrepro [-outdir results] [-quick] [-only fig3,table1,...]
//
// -quick shrinks the Monte-Carlo validation and Figure 5 grids for a fast
// smoke run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"targetedattacks/internal/experiments"
)

// artifact is one regenerable experiment output.
type artifact struct {
	key  string
	desc string
	gen  func(quick bool) ([]renderable, error)
}

// renderable is a named object that renders as text and CSV.
type renderable struct {
	name string
	text func(io.Writer) error
	csv  func(io.Writer) error
}

func tableArtifact(t *experiments.Table, name string) renderable {
	return renderable{name: name, text: t.Render, csv: t.CSV}
}

func figureArtifact(f *experiments.Figure, name string) renderable {
	return renderable{
		name: name,
		text: func(w io.Writer) error { return f.RenderASCII(w, 72, 20) },
		csv:  f.CSV,
	}
}

func artifacts() []artifact {
	return []artifact{
		{"fig1", "Figure 1: state-space partition census", func(bool) ([]renderable, error) {
			t, err := experiments.Figure1(7, 7)
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "figure1")}, nil
		}},
		{"fig2", "Figure 2: transition matrix construction", func(bool) ([]renderable, error) {
			t, err := experiments.Figure2([]int{1, 2, 3, 4, 5, 6, 7})
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "figure2")}, nil
		}},
		{"fig3", "Figure 3: E(T_S^k), E(T_P^k) panels", func(bool) ([]renderable, error) {
			t, err := experiments.Figure3(experiments.DefaultFigure3Config())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "figure3")}, nil
		}},
		{"table1", "Table I: E(T_S), E(T_P) at high survival", func(bool) ([]renderable, error) {
			t, err := experiments.Table1(experiments.DefaultTable1Config())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "table1")}, nil
		}},
		{"table2", "Table II: successive sojourn times", func(bool) ([]renderable, error) {
			t, err := experiments.Table2(experiments.DefaultTable2Config())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "table2")}, nil
		}},
		{"fig4", "Figure 4: absorption probabilities", func(bool) ([]renderable, error) {
			t, err := experiments.Figure4(experiments.DefaultFigure4Config())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "figure4")}, nil
		}},
		{"fig5", "Figure 5: overlay safe/polluted proportions", func(quick bool) ([]renderable, error) {
			cfg := experiments.DefaultFigure5Config()
			if quick {
				cfg.MaxEvents = 10000
				cfg.Samples = 20
			}
			safe, polluted, err := experiments.Figure5(cfg)
			if err != nil {
				return nil, err
			}
			return []renderable{
				figureArtifact(safe, "figure5_safe"),
				figureArtifact(polluted, "figure5_polluted"),
			}, nil
		}},
		{"ablk", "Ablation A2: all protocol_k", func(bool) ([]renderable, error) {
			t, err := experiments.AblationK(experiments.DefaultAblationKConfig())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "ablation_k")}, nil
		}},
		{"ablnu", "Ablation A1: Rule 1 ν sensitivity", func(bool) ([]renderable, error) {
			t, err := experiments.AblationNu(experiments.DefaultAblationNuConfig())
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "ablation_nu")}, nil
		}},
		{"mc", "Validation A3: Monte-Carlo cross-check", func(quick bool) ([]renderable, error) {
			cfg := experiments.DefaultValidationConfig()
			if quick {
				cfg.Runs = 2000
			}
			t, err := experiments.Validation(cfg)
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "validation_mc")}, nil
		}},
		{"sys", "System A4: agent-based overlay simulation", func(quick bool) ([]renderable, error) {
			cfg := experiments.DefaultSystemSimConfig()
			if quick {
				cfg.Events = 4000
			}
			t, err := experiments.SystemSim(cfg)
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "system_sim")}, nil
		}},
		{"lookup", "Lookup A5: availability under attack", func(quick bool) ([]renderable, error) {
			cfg := experiments.DefaultLookupConfig()
			if quick {
				cfg.Events = 2000
				cfg.Trials = 100
			}
			t, err := experiments.Lookup(cfg)
			if err != nil {
				return nil, err
			}
			return []renderable{tableArtifact(t, "lookup_availability")}, nil
		}},
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	var (
		outdir = fs.String("outdir", "", "directory for CSV outputs (optional)")
		quick  = fs.Bool("quick", false, "shrink slow experiments for a smoke run")
		only   = fs.String("only", "", "comma-separated subset of experiments (e.g. fig3,table1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := map[string]bool{}
	if *only != "" {
		for _, key := range strings.Split(*only, ",") {
			want[strings.TrimSpace(key)] = true
		}
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	ran := 0
	for _, a := range artifacts() {
		if len(want) > 0 && !want[a.key] {
			continue
		}
		fmt.Fprintf(out, "\n### %s (%s)\n\n", a.desc, a.key)
		items, err := a.gen(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", a.key, err)
		}
		for _, item := range items {
			if err := item.text(out); err != nil {
				return fmt.Errorf("%s: rendering: %w", a.key, err)
			}
			if *outdir != "" {
				path := filepath.Join(*outdir, item.name+".csv")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := item.csv(f); err != nil {
					f.Close()
					return fmt.Errorf("%s: writing %s: %w", a.key, path, err)
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(out, "csv: %s\n", path)
			}
		}
		ran++
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	fmt.Fprintf(out, "\n%d experiment groups regenerated.\n", ran)
	return nil
}
