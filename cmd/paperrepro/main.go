// Command paperrepro regenerates every table and figure of the evaluation
// sections of the DSN 2011 targeted-attack paper (see DESIGN.md for the
// experiment index) plus this reproduction's ablations and engine-enabled
// sweeps. Experiments are scenarios in the internal/experiments registry;
// the full reproduction executes them concurrently on a worker pool while
// staying deterministic for a fixed -seed. Text renderings go to stdout in
// registry order; with -outdir, each artifact is also written as CSV.
//
// Usage:
//
//	paperrepro [-outdir results] [-quick] [-only fig3,table1,...]
//	           [-workers N] [-seed S] [-list] [-solver dense|sparse|gs|ilu|auto]
//	           [-tol 1e-12] [-buildworkers N] [-cpuprofile f] [-memprofile f]
//
// -quick shrinks the slow grids for a fast smoke run. -workers 0 (the
// default) uses one worker per CPU. -list prints the scenario catalog and
// exits. -solver/-tol pick the analytic linear-solver backend for the
// sweep scenarios S1-S5 (the paper-exact artifacts always use dense LU;
// S5 defaults to auto, whose mixing probe engages the ILU(0)
// preconditioner on slow-mixing chains).
// -buildworkers sizes a dedicated pool for the row-parallel
// transition-matrix construction of the large-state-space sweeps (S3-S5):
// 0 (the default) shares the scenario pool, 1 forces a serial
// build, N > 1 dedicates that many workers; construction output is
// bit-identical for any setting. -cpuprofile/-memprofile write pprof
// profiles so solver hot spots are inspectable without code edits.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"targetedattacks/internal/engine"
	"targetedattacks/internal/experiments"
	"targetedattacks/internal/matrix"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("paperrepro", flag.ContinueOnError)
	var (
		outdir     = fs.String("outdir", "", "directory for CSV outputs (optional)")
		quick      = fs.Bool("quick", false, "shrink slow experiments for a smoke run")
		only       = fs.String("only", "", "comma-separated subset of scenarios (e.g. fig3,table1)")
		workers    = fs.Int("workers", 0, "worker pool width (0 = one per CPU)")
		seed       = fs.Int64("seed", 1, "root seed for randomized scenarios")
		list       = fs.Bool("list", false, "list the scenario catalog and exit")
		solver     = fs.String("solver", "", "linear-solver backend for the sweep scenarios (S1-S5): "+strings.Join(matrix.SolverKinds(), ", "))
		tol        = fs.Float64("tol", 0, "iterative solver residual tolerance (0 = default)")
		buildwkrs  = fs.Int("buildworkers", 0, "dedicated workers for transition-matrix construction in S3/S4 (0 = share -workers pool)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	solverCfg := matrix.SolverConfig{Kind: *solver, Tol: *tol}
	if _, err := solverCfg.Build(); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro: memprofile:", err)
			}
		}()
	}
	if *list {
		for _, s := range experiments.Scenarios() {
			fmt.Fprintf(out, "%-10s %s\n", s.Key, s.Desc)
		}
		return nil
	}
	keys := experiments.Keys()
	if *only != "" {
		keys = nil
		for _, key := range strings.Split(*only, ",") {
			if key = strings.TrimSpace(key); key != "" {
				keys = append(keys, key)
			}
		}
		if len(keys) == 0 {
			return fmt.Errorf("no experiments matched -only=%q", *only)
		}
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	env := experiments.Env{
		Pool:   engine.New(*workers),
		Seed:   *seed,
		Quick:  *quick,
		Solver: solverCfg,
	}
	if *buildwkrs > 0 {
		env.BuildPool = engine.New(*buildwkrs)
	}
	results, err := experiments.RunScenarios(context.Background(), env, keys)
	if err != nil {
		return err
	}
	var failed []string
	for _, res := range results {
		fmt.Fprintf(out, "\n### %s (%s)\n\n", res.Scenario.Desc, res.Scenario.Key)
		if res.Err != nil {
			// Scenario failures are isolated: report it, keep rendering
			// the others, fail the run at the end.
			fmt.Fprintf(out, "error: %v\n", res.Err)
			failed = append(failed, res.Scenario.Key)
			continue
		}
		for _, art := range res.Artifacts {
			if err := art.Text(out); err != nil {
				return fmt.Errorf("%s: rendering: %w", res.Scenario.Key, err)
			}
			if *outdir != "" {
				path := filepath.Join(*outdir, art.Name+".csv")
				f, err := os.Create(path)
				if err != nil {
					return err
				}
				if err := art.CSV(f); err != nil {
					f.Close()
					return fmt.Errorf("%s: writing %s: %w", res.Scenario.Key, path, err)
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(out, "csv: %s\n", path)
			}
		}
	}
	fmt.Fprintf(out, "\n%d experiment groups regenerated.\n", len(results)-len(failed))
	if len(failed) > 0 {
		return fmt.Errorf("%d scenario(s) failed: %s", len(failed), strings.Join(failed, ", "))
	}
	return nil
}
