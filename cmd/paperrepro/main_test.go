package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig1,table2"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 1", "Table II", "288", "2 experiment groups"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-only", "table1", "-outdir", dir}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "mu,d,") {
		t.Errorf("CSV header wrong: %q", string(data[:20]))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "nope"}, &out); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestRunQuickFigure5(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig5", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 5") {
		t.Error("missing Figure 5 output")
	}
}

func TestRunQuickSystem(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "sys", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "System A4") {
		t.Error("missing system experiment output")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Error("unknown flag: want error")
	}
}

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"fig1", "fig5", "mc", "nusweep", "stress9"} {
		if !strings.Contains(out.String(), key) {
			t.Errorf("-list missing scenario %q", key)
		}
	}
}

func TestRunNewSweeps(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "nusweep,stress9", "-quick", "-workers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sweep S1", "Sweep S2", "C=9", "2 experiment groups"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunDeterministicAcrossWorkers checks the CLI contract: the same
// -seed renders identical output for any -workers width.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	render := func(workers string) string {
		var out bytes.Buffer
		args := []string{"-only", "mc,table2", "-quick", "-seed", "9", "-workers", workers}
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if one, eight := render("1"), render("8"); one != eight {
		t.Error("-workers 1 and -workers 8 rendered different output for the same seed")
	}
}

func TestRunLargeSparseScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "large", "-quick", "-solver", "sparse"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sweep S3", "2295"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunHugeScenario exercises the S4 frontier through the CLI exactly
// as CI runs it: C=∆=40 (quick), sparse solves, a dedicated build pool.
func TestRunHugeScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "huge", "-quick", "-solver", "sparse", "-buildworkers", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sweep S4", "35301", "33579"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestRunBuildWorkersInvariance checks the -buildworkers contract: the
// construction pool width cannot change any rendered number.
func TestRunBuildWorkersInvariance(t *testing.T) {
	render := func(buildworkers string) string {
		var out bytes.Buffer
		args := []string{"-only", "large", "-quick", "-solver", "sparse", "-buildworkers", buildworkers}
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if one, eight := render("1"), render("8"); one != eight {
		t.Error("-buildworkers 1 and 8 rendered different output")
	}
}

func TestRunRejectsBadSolver(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-only", "fig1", "-solver", "cholesky"}, &out); err == nil {
		t.Error("unknown solver: want error")
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	if err := run([]string{"-only", "fig1", "-cpuprofile", cpu, "-memprofile", mem}, &out); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
