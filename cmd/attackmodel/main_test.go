package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunBeta(t *testing.T) {
	if err := run([]string{"-alpha", "beta", "-mu", "0.1", "-d", "0.5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithOverlay(t *testing.T) {
	if err := run([]string{"-overlay", "100", "-events", "500"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadAlpha(t *testing.T) {
	if err := run([]string{"-alpha", "gamma"}); err == nil {
		t.Error("bad alpha: want error")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if err := run([]string{"-mu", "2"}); err == nil {
		t.Error("mu=2: want error")
	}
	if err := run([]string{"-k", "9"}); err == nil {
		t.Error("k>C: want error")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nosuchflag"}); err == nil {
		t.Error("unknown flag: want error")
	}
}

func TestRunMonteCarloCrossCheck(t *testing.T) {
	if err := run([]string{"-mu", "0.1", "-d", "0.5", "-mc", "500", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunScenarioListing(t *testing.T) {
	if err := run([]string{"-scenarios"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLargeCluster(t *testing.T) {
	// The C=∆=9 point of the stress sweep must also work one-off.
	if err := run([]string{"-C", "9", "-delta", "9", "-k", "9", "-mu", "0.2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSparseSolver(t *testing.T) {
	// A C=∆=12 one-off is out of reach for casual dense runs but quick on
	// the sparse path.
	if err := run([]string{"-C", "12", "-delta", "12", "-mu", "0.2", "-d", "0.8", "-solver", "sparse"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadSolver(t *testing.T) {
	if err := run([]string{"-solver", "cholesky"}); err == nil {
		t.Error("unknown solver: want error")
	}
}
