// Command attackmodel computes the closed-form results of the DSN 2011
// targeted-attack model for one parameter point: expected safe/polluted
// times before absorption, successive sojourn durations and absorption
// probabilities.
//
// Usage:
//
//	attackmodel [-C 7] [-delta 7] [-mu 0.2] [-d 0.9] [-k 1] [-nu 0.1]
//	            [-alpha delta|beta] [-sojourns 2] [-overlay 0] [-events 100000]
//	            [-mc 0] [-mcsteps 1000000] [-workers 0] [-seed 1]
//	            [-scenarios] [-solver dense|sparse|gs|ilu|auto] [-tol 1e-12]
//
// -solver selects the linear-solver backend of the closed forms: the
// exact dense LU (default), a sparse iterative path that keeps large
// C/∆ state spaces affordable (bicgstab, gs, or the ILU(0)-
// preconditioned ilu for slow-mixing chains as d → 1), or auto, which
// probes each block's mixing speed and picks for you; -tol tunes the
// iterative residual target.
//
// With -overlay n > 0 it additionally prints the overlay-level expected
// proportions of safe and polluted clusters after -events events
// (Theorem 2). With -mc N > 0 it cross-validates the closed forms against
// N Monte-Carlo trajectories fanned across -workers workers — the result
// is deterministic in -seed alone, for any worker count. -scenarios lists
// the registered experiment scenarios (run them with cmd/paperrepro).
//
// -model selects a registered chain family other than the default paper
// model. For "apt-compromise" the cell comes from -n/-theta/-phi/-rho/
// -detect (or a raw -params JSON object for any family), the initial
// distribution from -dist, and the output is the model-free analysis:
// expected times in the A/B transient split, successive sojourns, hit
// probability and per-class absorption.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	_ "targetedattacks/internal/aptchain"
	"targetedattacks/internal/chainmodel"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/experiments"
	"targetedattacks/internal/matrix"
	"targetedattacks/internal/montecarlo"
	"targetedattacks/internal/overlay"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "attackmodel:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("attackmodel", flag.ContinueOnError)
	var (
		c         = fs.Int("C", 7, "core set size C")
		delta     = fs.Int("delta", 7, "maximal spare set size ∆")
		mu        = fs.Float64("mu", 0.2, "fraction µ of malicious peers in the universe")
		d         = fs.Float64("d", 0.9, "identifier survival probability d per time unit")
		k         = fs.Int("k", 1, "protocol_k randomization amount (1..C)")
		nu        = fs.Float64("nu", 0.1, "Rule 1 threshold ν")
		alpha     = fs.String("alpha", "delta", "initial distribution: delta or beta")
		sojourns  = fs.Int("sojourns", 2, "number of successive sojourns to report")
		overlayN  = fs.Int("overlay", 0, "if > 0, also evaluate an overlay of n clusters (Theorem 2)")
		events    = fs.Int("events", 100000, "overlay events m for -overlay")
		mcRuns    = fs.Int("mc", 0, "if > 0, cross-validate with this many Monte-Carlo trajectories")
		mcSteps   = fs.Int("mcsteps", 1_000_000, "step budget per Monte-Carlo trajectory")
		workers   = fs.Int("workers", 0, "worker pool width for -mc (0 = one per CPU)")
		seed      = fs.Int64("seed", 1, "root seed for -mc")
		scenarios = fs.Bool("scenarios", false, "list the experiment scenario registry and exit")
		solver    = fs.String("solver", "", "linear-solver backend: "+strings.Join(matrix.SolverKinds(), ", "))
		tol       = fs.Float64("tol", 0, "iterative solver residual tolerance (0 = default)")
		modelName = fs.String("model", "", "chain family: "+strings.Join(chainmodel.Names(), ", ")+" (\"\" = "+chainmodel.DefaultFamily+")")
		params    = fs.String("params", "", "non-default -model: raw JSON cell, overriding the per-family flags")
		distName  = fs.String("dist", "", "non-default -model: named initial distribution (\"\" = family default)")
		n         = fs.Int("n", 6, "apt-compromise: number of nodes n")
		theta     = fs.Float64("theta", 0.5, "apt-compromise: per-probe infiltration probability θ")
		phi       = fs.Float64("phi", 0.4, "apt-compromise: escalation probability φ")
		rho       = fs.Float64("rho", 0.3, "apt-compromise: implant stealth ρ")
		detect    = fs.Float64("detect", 0.7, "apt-compromise: detection probability δ")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenarios {
		for _, s := range experiments.Scenarios() {
			fmt.Printf("%-10s %s\n", s.Key, s.Desc)
		}
		fmt.Println("\nrun scenarios with: paperrepro -only <keys> [-workers N] [-seed S]")
		return nil
	}
	if name := strings.ToLower(strings.TrimSpace(*modelName)); name != "" && name != chainmodel.DefaultFamily {
		body := *params
		if body == "" {
			body = fmt.Sprintf(`{"n":%d,"theta":%g,"phi":%g,"rho":%g,"detect":%g}`,
				*n, *theta, *phi, *rho, *detect)
		}
		return runModel(name, body, *distName, *sojourns, matrix.SolverConfig{Kind: *solver, Tol: *tol})
	}
	p := core.Params{C: *c, Delta: *delta, Mu: *mu, D: *d, K: *k, Nu: *nu}
	model, err := core.NewWithSolver(p, matrix.SolverConfig{Kind: *solver, Tol: *tol})
	if err != nil {
		return err
	}
	var dist core.InitialDistribution
	switch *alpha {
	case "delta":
		dist = core.DistributionDelta
	case "beta":
		dist = core.DistributionBeta
	default:
		return fmt.Errorf("unknown -alpha %q (want delta or beta)", *alpha)
	}
	a, err := model.AnalyzeNamed(dist, *sojourns)
	if err != nil {
		return err
	}
	fmt.Printf("model: %v, α = %v, |Ω| = %d states, solver = %s\n", p, dist, model.Space().Size(), model.SolverName())
	if a.Solver.Iterations > 0 || a.Solver.Fallbacks > 0 {
		line := fmt.Sprintf("solver stats: backend = %s, %d iterations", a.Solver.Backend, a.Solver.Iterations)
		if a.Solver.Fallbacks > 0 {
			line += fmt.Sprintf(", %d dense fallbacks (%s)", a.Solver.Fallbacks, a.Solver.FallbackReason)
		}
		fmt.Println(line)
	}
	fmt.Printf("E(T_S) = %.6g   (expected events in safe states before absorption)\n", a.ExpectedSafeTime)
	fmt.Printf("E(T_P) = %.6g   (expected events in polluted states before absorption)\n", a.ExpectedPollutedTime)
	fmt.Printf("P(ever polluted) = %.6g\n", a.PollutionProbability)
	for i := range a.SafeSojourns {
		fmt.Printf("E(T_S,%d) = %-12.6g E(T_P,%d) = %.6g\n",
			i+1, a.SafeSojourns[i], i+1, a.PollutedSojourns[i])
	}
	names := make([]string, 0, len(a.Absorption))
	for name := range a.Absorption {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("p(%s) = %.6g\n", name, a.Absorption[name])
	}
	if *mcRuns > 0 {
		if err := crossValidate(model, a, dist, *mcRuns, *mcSteps, *workers, *seed); err != nil {
			return err
		}
	}
	if *overlayN > 0 {
		cc, err := overlay.New(model, *overlayN)
		if err != nil {
			return err
		}
		init, err := model.Initial(dist)
		if err != nil {
			return err
		}
		pts, err := cc.ProportionSeries(init, *events, 10)
		if err != nil {
			return err
		}
		fmt.Printf("\noverlay of n=%d clusters (Theorem 2):\n", *overlayN)
		fmt.Printf("%-12s %-12s %s\n", "events", "E(N_S)/n", "E(N_P)/n")
		for _, pt := range pts {
			fmt.Printf("%-12d %-12.6f %.6f\n", pt.Events, pt.Safe, pt.Polluted)
		}
	}
	return nil
}

// runModel analyzes one cell of a non-default chain family through the
// model-agnostic engine and prints the model-free closed forms.
func runModel(name, body, dist string, sojourns int, sc matrix.SolverConfig) error {
	fam, ok := chainmodel.Lookup(name)
	if !ok {
		return fmt.Errorf("unknown -model %q (registered: %s)", name, strings.Join(chainmodel.Names(), ", "))
	}
	cell, err := fam.ParseCell([]byte(body))
	if err != nil {
		return err
	}
	distName, err := fam.ParseDist(dist)
	if err != nil {
		return err
	}
	states, err := fam.StateCount(cell)
	if err != nil {
		return err
	}
	shared, err := fam.NewShared([]chainmodel.Cell{cell})
	if err != nil {
		return err
	}
	inst, err := fam.Build(shared, cell, sc, nil)
	if err != nil {
		return err
	}
	a, err := chainmodel.Analyze(inst, distName, sojourns)
	if err != nil {
		return err
	}
	dto, err := json.Marshal(fam.CellDTO(cell))
	if err != nil {
		return err
	}
	solverName := sc.Kind
	if solverName == "" {
		solverName = "dense"
	}
	fmt.Printf("model: %s %s, α = %s, |Ω| = %d states, solver = %s\n",
		fam.Name(), dto, distName, states, solverName)
	if a.Solver.Iterations > 0 || a.Solver.Fallbacks > 0 {
		line := fmt.Sprintf("solver stats: backend = %s, %d iterations", a.Solver.Backend, a.Solver.Iterations)
		if a.Solver.Fallbacks > 0 {
			line += fmt.Sprintf(", %d dense fallbacks (%s)", a.Solver.Fallbacks, a.Solver.FallbackReason)
		}
		fmt.Println(line)
	}
	fmt.Printf("E(T_A) = %.6g   (expected events in transient subset A before absorption)\n", a.TimeInA)
	fmt.Printf("E(T_B) = %.6g   (expected events in transient subset B before absorption)\n", a.TimeInB)
	fmt.Printf("P(hit B) = %.6g\n", a.HitProbability)
	for i := range a.SojournsA {
		fmt.Printf("E(T_A,%d) = %-12.6g E(T_B,%d) = %.6g\n",
			i+1, a.SojournsA[i], i+1, a.SojournsB[i])
	}
	classes := make([]string, 0, len(a.Absorption))
	for class := range a.Absorption {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Printf("p(%s) = %.6g\n", class, a.Absorption[class])
	}
	return nil
}

// crossValidate fans runs Monte-Carlo trajectories across the pool and
// prints the simulated estimates beside the closed forms.
func crossValidate(model *core.Model, exact *core.Analysis, dist core.InitialDistribution, runs, maxSteps, workers int, seed int64) error {
	init, err := model.Initial(dist)
	if err != nil {
		return err
	}
	sim, err := montecarlo.New(model, seed)
	if err != nil {
		return err
	}
	pool := engine.New(workers)
	sum, err := sim.RunManyBatch(context.Background(), pool, init, runs, maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("\nMonte-Carlo cross-check (%d runs, seed %d, %d workers):\n", runs, seed, pool.Workers())
	fmt.Printf("%-22s %-14s %s\n", "quantity", "closed form", "monte carlo")
	fmt.Printf("%-22s %-14.6g %.6g ± %.2g\n", "E(T_S)",
		exact.ExpectedSafeTime, sum.SafeTime.Mean(), sum.SafeTime.ConfidenceInterval95())
	fmt.Printf("%-22s %-14.6g %.6g ± %.2g\n", "E(T_P)",
		exact.ExpectedPollutedTime, sum.PollutedTime.Mean(), sum.PollutedTime.ConfidenceInterval95())
	for _, class := range []string{
		core.ClassNameSafeMerge, core.ClassNameSafeSplit,
		core.ClassNamePollutedMerge, core.ClassNamePollutedSplit,
	} {
		fmt.Printf("%-22s %-14.6g %.6g\n", "p("+class+")",
			exact.Absorption[class], sum.Absorption.Frequency(class))
	}
	if sum.Truncated > 0 {
		fmt.Printf("%d trajectories hit the %d-step budget\n", sum.Truncated, maxSteps)
	}
	return nil
}
