// Command attackload drives synthetic traffic at an attackd server and
// reports latency percentiles per request kind plus the server's cache
// hit rate over the run. It is the load harness for sizing attackd
// deployments and for catching serving-layer regressions (streaming,
// caching, singleflight) under concurrency.
//
// Usage:
//
//	attackload [-addr http://host:8080] [-qps 50] [-duration 5s]
//	           [-mix analyze=60,sweep=20,stream=15,simsweep=5]
//	           [-variants 8] [-inflight 16] [-seed 1]
//
// With no -addr, an in-process attackd server is started and torn down
// around the run — the zero-setup mode CI smokes use.
//
// The generator is open-loop at -qps with at most -inflight requests
// outstanding; ticks that would exceed the in-flight cap are counted as
// dropped rather than queued, so a saturated server shows up as drops
// and fat tails instead of a silently stretched run. Request parameters
// are drawn from -variants distinct values per axis, so repeats hit the
// server's result cache at a rate the report surfaces (from
// attackd_cache_hits_total / attackd_cache_misses_total deltas).
//
// Kinds: analyze (one cell), sweep (a 4-cell grid), stream (the same
// grid over NDJSON, drained line by line), simsweep (one simulated
// cell).
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"targetedattacks/internal/attackd"
	"targetedattacks/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "attackload:", err)
		os.Exit(1)
	}
}

// kinds orders the report; mix weights refer to these names.
var kinds = []string{"analyze", "sweep", "stream", "simsweep"}

// request is one unit of generated work, fully determined before its
// goroutine launches so the shared RNG stays on the pacing loop.
type request struct {
	kind string
	mu   float64
	d    float64
	seed int64
}

// result is one completed request's measurement.
type result struct {
	kind    string
	latency time.Duration
	err     error
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("attackload", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "attackd base URL (empty = start an in-process server)")
		qps      = fs.Float64("qps", 50, "target request rate")
		duration = fs.Duration("duration", 5*time.Second, "how long to generate load")
		mixSpec  = fs.String("mix", "analyze=60,sweep=20,stream=15,simsweep=5", "kind=weight traffic mix")
		variants = fs.Int("variants", 8, "distinct parameter values per axis (smaller = more cache hits)")
		inflight = fs.Int("inflight", 16, "maximum outstanding requests")
		seed     = fs.Int64("seed", 1, "RNG seed for the traffic pattern")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *qps <= 0 {
		return fmt.Errorf("-qps must be positive, got %g", *qps)
	}
	if *variants < 1 {
		return fmt.Errorf("-variants must be at least 1, got %d", *variants)
	}
	if *inflight < 1 {
		return fmt.Errorf("-inflight must be at least 1, got %d", *inflight)
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}

	base := *addr
	if base == "" {
		srv, err := attackd.New(attackd.Config{})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		base = ts.URL
		fmt.Fprintf(out, "attackload: in-process server at %s\n", base)
	}
	base = strings.TrimSuffix(base, "/")

	before, err := scrape(base)
	if err != nil {
		return fmt.Errorf("reading /metrics before the run: %w", err)
	}

	rng := rand.New(rand.NewSource(*seed))
	results := make(chan result, 4096)
	sem := make(chan struct{}, *inflight)
	var wg sync.WaitGroup
	var sent, dropped int
	interval := time.Duration(float64(time.Second) / *qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.After(*duration)
	start := time.Now()

pace:
	for {
		select {
		case <-ctx.Done():
			break pace
		case <-deadline:
			break pace
		case <-ticker.C:
			req := request{
				kind: pickKind(rng, mix),
				mu:   0.05 * float64(1+rng.Intn(*variants)),
				d:    0.5 + 0.05*float64(rng.Intn(*variants)),
				seed: int64(1 + rng.Intn(*variants)),
			}
			select {
			case sem <- struct{}{}:
			default:
				dropped++ // over the in-flight cap: shed, don't queue
				continue
			}
			sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				t0 := time.Now()
				err := fire(base, req)
				results <- result{kind: req.kind, latency: time.Since(t0), err: err}
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(results)

	lat := make(map[string][]time.Duration)
	var failures []error
	for r := range results {
		if r.err != nil {
			failures = append(failures, fmt.Errorf("%s: %w", r.kind, r.err))
			continue
		}
		lat[r.kind] = append(lat[r.kind], r.latency)
	}

	fmt.Fprintf(out, "attackload: %d requests in %.1fs (%.1f req/s), %d dropped, %d errors\n",
		sent, elapsed.Seconds(), float64(sent)/elapsed.Seconds(), dropped, len(failures))
	for _, kind := range kinds {
		ds := lat[kind]
		if len(ds) == 0 {
			continue
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		fmt.Fprintf(out, "  %-8s n=%-5d p50=%-10s p90=%-10s p99=%s\n",
			kind, len(ds), percentile(ds, 0.50), percentile(ds, 0.90), percentile(ds, 0.99))
	}
	after, err := scrape(base)
	if err != nil {
		return fmt.Errorf("reading /metrics after the run: %w", err)
	}
	hits := counterValue(after, "attackd_cache_hits_total") - counterValue(before, "attackd_cache_hits_total")
	misses := counterValue(after, "attackd_cache_misses_total") - counterValue(before, "attackd_cache_misses_total")
	if total := hits + misses; total > 0 {
		fmt.Fprintf(out, "  cache    %.0f hits / %.0f misses (%.1f%% hit rate)\n",
			hits, misses, 100*hits/total)
	}
	if err := reportServerHistograms(out, before, after); err != nil {
		return err
	}
	for i, err := range failures {
		if i == 3 {
			fmt.Fprintf(out, "  ... and %d more errors\n", len(failures)-3)
			break
		}
		fmt.Fprintf(out, "  error: %v\n", err)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d of %d requests failed", len(failures), sent)
	}
	return nil
}

// parseMix turns "analyze=60,sweep=20" into cumulative weights over the
// known kinds.
func parseMix(spec string) (map[string]int, error) {
	mix := make(map[string]int)
	for _, part := range strings.Split(spec, ",") {
		name, weight, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("mix entry %q is not kind=weight", part)
		}
		w, err := strconv.Atoi(weight)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("mix weight %q must be a non-negative integer", weight)
		}
		known := false
		for _, k := range kinds {
			if k == name {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown mix kind %q (kinds: %s)", name, strings.Join(kinds, ", "))
		}
		mix[name] = w
	}
	total := 0
	for _, w := range mix {
		total += w
	}
	if total == 0 {
		return nil, fmt.Errorf("mix %q has zero total weight", spec)
	}
	return mix, nil
}

func pickKind(rng *rand.Rand, mix map[string]int) string {
	total := 0
	for _, w := range mix {
		total += w
	}
	r := rng.Intn(total)
	for _, k := range kinds {
		if r -= mix[k]; r < 0 {
			return k
		}
	}
	return kinds[0]
}

// fire issues one request and drains its response; any non-2xx status
// is an error.
func fire(base string, req request) error {
	switch req.kind {
	case "analyze":
		body := fmt.Sprintf(`{"c":7,"delta":7,"k":1,"mu":%.4f,"d":%.4f,"nu":0.1}`, req.mu, req.d)
		return post(base+"/v1/analyze", body)
	case "sweep":
		return post(base+"/v1/sweep", sweepBody(req))
	case "stream":
		return stream(base+"/v1/sweep?stream=1", sweepBody(req))
	case "simsweep":
		body := fmt.Sprintf(`{"mu":"%.4f","d":"%.4f","sizes":"64","events":200,"replicas":1,"seed":%d}`,
			req.mu, req.d, req.seed)
		return post(base+"/v1/simsweep", body)
	}
	return fmt.Errorf("unknown kind %q", req.kind)
}

// sweepBody is a 4-cell grid around the request's (µ, d) point.
func sweepBody(req request) string {
	return fmt.Sprintf(`{"c":"7","delta":"7","k":"1","mu":"%.4f,%.4f","d":"%.4f,%.4f","nu":"0.1"}`,
		req.mu, req.mu+0.01, req.d, req.d+0.01)
}

func post(url, body string) error {
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return nil
}

// stream posts an NDJSON request and drains it line by line, checking
// the protocol's shape: at least one cell line, then a summary line.
func stream(url, body string) error {
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lines := 0
	var last []byte
	for sc.Scan() {
		lines++
		last = append(last[:0], sc.Bytes()...)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines < 2 || !bytes.Contains(last, []byte(`"summary"`)) {
		return fmt.Errorf("stream ended after %d lines without a summary", lines)
	}
	return nil
}

// scrape fetches and parses the server's full /metrics exposition. A
// server that predates the histogram families fails here with a clear
// hint rather than reporting empty quantiles.
func scrape(base string) (map[string]*obs.MetricFamily, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics: status %d", resp.StatusCode)
	}
	fams, err := obs.ParseProm(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("parsing /metrics: %w", err)
	}
	for _, name := range []string{
		"attackd_cache_hits_total",
		"attackd_cache_misses_total",
		"attackd_request_duration_seconds",
		"attackd_stage_duration_seconds",
	} {
		if fams[name] == nil {
			return nil, fmt.Errorf("/metrics has no %q family — is the server an attackd build without latency histograms?", name)
		}
	}
	return fams, nil
}

// counterValue reads an unlabeled counter; 0 when absent.
func counterValue(fams map[string]*obs.MetricFamily, name string) float64 {
	f := fams[name]
	if f == nil {
		return 0
	}
	for _, p := range f.Points {
		if len(p.Labels) == 0 {
			return p.Value
		}
	}
	return 0
}

// reportServerHistograms prints the server-side latency quantiles that
// accrued between the two scrapes: per endpoint from the request
// histogram, per evaluation stage from the stage histogram. These are
// the server's own measurements, so they exclude client and network
// time — comparing them with the client-side percentiles above
// separates serving cost from transport cost.
func reportServerHistograms(out io.Writer, before, after map[string]*obs.MetricFamily) error {
	report := func(family, labelKey, header string) error {
		for _, key := range obs.LabelValues(after[family], labelKey) {
			match := map[string]string{labelKey: key}
			b, err := obs.ExtractHistogram(before, family, match)
			if err != nil {
				// The label appeared during the run; delta against zero.
				b = obs.HistogramSnapshot{}
			}
			a, err := obs.ExtractHistogram(after, family, match)
			if err != nil {
				return fmt.Errorf("reading %s{%s=%q}: %w", family, labelKey, key, err)
			}
			d := a
			if len(b.Bounds) != 0 {
				if d, err = a.Sub(b); err != nil {
					return fmt.Errorf("delta of %s{%s=%q}: %w", family, labelKey, key, err)
				}
			}
			n := d.Counts[len(d.Counts)-1]
			if n == 0 {
				continue
			}
			fmt.Fprintf(out, "  %s %-10s n=%-5d p50=%-10s p90=%-10s p99=%s\n",
				header, key, n, promDuration(d.Quantile(0.50)), promDuration(d.Quantile(0.90)), promDuration(d.Quantile(0.99)))
		}
		return nil
	}
	fmt.Fprintln(out, "server-side (from /metrics histogram deltas):")
	if err := report("attackd_request_duration_seconds", "endpoint", "endpoint"); err != nil {
		return err
	}
	return report("attackd_stage_duration_seconds", "stage", "stage   ")
}

// promDuration renders a histogram quantile (seconds) as a duration.
func promDuration(seconds float64) string {
	if math.IsNaN(seconds) {
		return "-"
	}
	return time.Duration(seconds * float64(time.Second)).Round(10 * time.Microsecond).String()
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx].Round(10 * time.Microsecond)
}
