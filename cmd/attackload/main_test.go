package main

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestLoadSmokeInProcess drives the whole harness against an in-process
// server for half a second and checks the report's shape. Low qps keeps
// this tractable on a single-CPU CI box.
func TestLoadSmokeInProcess(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var out bytes.Buffer
	err := run(ctx, []string{
		"-qps", "30", "-duration", "500ms", "-seed", "7",
		"-variants", "3", "-mix", "analyze=50,sweep=25,stream=15,simsweep=10",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"requests in", "p50=", "p99=", "0 errors"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
	// With 3 variants per axis the pattern repeats inside 500ms, so the
	// cache line must appear and show at least one hit.
	if !strings.Contains(report, "cache") {
		t.Errorf("report missing the cache line:\n%s", report)
	}
}

// TestLoadBadFlags: flag validation fails fast, before any traffic.
func TestLoadBadFlags(t *testing.T) {
	ctx := context.Background()
	cases := [][]string{
		{"-qps", "0"},
		{"-qps", "-3"},
		{"-variants", "0"},
		{"-inflight", "0"},
		{"-mix", "analyze"},
		{"-mix", "analyze=x"},
		{"-mix", "juggle=50"},
		{"-mix", "analyze=0,sweep=0"},
	}
	for _, args := range cases {
		if err := run(ctx, args, &bytes.Buffer{}); err == nil {
			t.Errorf("args %v: want error", args)
		}
	}
}

// TestParseMix: the accepted grammar and its weights.
func TestParseMix(t *testing.T) {
	mix, err := parseMix("analyze=3, sweep=1")
	if err != nil {
		t.Fatal(err)
	}
	if mix["analyze"] != 3 || mix["sweep"] != 1 {
		t.Errorf("mix = %v", mix)
	}
}
