package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunModelMode(t *testing.T) {
	if err := run([]string{"-events", "2000", "-clusters", "2", "-interval", "1000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRealtimeMode(t *testing.T) {
	if err := run([]string{"-events", "1000", "-clusters", "2", "-mode", "realtime"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithConsensus(t *testing.T) {
	if err := run([]string{"-events", "200", "-clusters", "2", "-consensus"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadMode(t *testing.T) {
	if err := run([]string{"-mode", "warp"}); err == nil {
		t.Error("bad mode: want error")
	}
}

func TestRunRejectsBadParams(t *testing.T) {
	if err := run([]string{"-mu", "2"}); err == nil {
		t.Error("mu=2: want error")
	}
}

func TestRunZeroInterval(t *testing.T) {
	if err := run([]string{"-events", "500", "-clusters", "2", "-interval", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicated(t *testing.T) {
	if err := run([]string{"-events", "800", "-clusters", "2", "-replicas", "3", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadReplicas(t *testing.T) {
	if err := run([]string{"-replicas", "0"}); err == nil {
		t.Error("replicas=0: want error")
	}
}

func TestRunRejectsBadStrategy(t *testing.T) {
	if err := run([]string{"-strategy", "sneaky"}); err == nil {
		t.Error("bad strategy: want error")
	}
}

func TestRunFastPopulationSized(t *testing.T) {
	if err := run([]string{"-peers", "5000", "-fast", "-events", "500", "-interval", "500", "-strategy", "passive"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := run([]string{"-events", "500", "-clusters", "2", "-interval", "500",
		"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}
