// Command overlaysim runs the full agent-based overlay simulation under a
// targeted attack: peers with expiring certificate-derived identifiers,
// clusters with core/spare role separation on a hypercube topology, the
// robust join/leave/split/merge operations of DSN 2011 Section IV, and a
// colluding adversary playing the Section V strategy (Rules 1 and 2).
//
// Usage:
//
//	overlaysim [-mu 0.2] [-d 0.9] [-k 1] [-events 50000] [-clusters 8]
//	           [-peers 0] [-fast] [-strategy paper|norule1|passive]
//	           [-mode model|realtime] [-consensus] [-seed 1] [-interval 5000]
//	           [-replicas 1] [-workers 0] [-cpuprofile f] [-memprofile f]
//
// With -replicas 1 (the default) the simulator prints a pollution report
// every -interval events and a final operation census. With -replicas R >
// 1 it runs R independent overlays with seeds derived from -seed, fanned
// across the worker pool, and reports the per-replica outcomes plus the
// mean polluted fraction with a 95% confidence interval — Monte-Carlo
// over whole systems instead of a single anecdote.
//
// -peers N sizes the bootstrap topology for a target population instead
// of -clusters, and -fast swaps ed25519 certificates for hash-derived
// identifiers — together they make 10^5..10^6-peer overlays practical
// from the command line. -cpuprofile/-memprofile write pprof profiles so
// simulation hot spots are inspectable without code edits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"targetedattacks/internal/adversary"
	"targetedattacks/internal/core"
	"targetedattacks/internal/engine"
	"targetedattacks/internal/overlaynet"
	"targetedattacks/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "overlaysim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("overlaysim", flag.ContinueOnError)
	var (
		mu        = fs.Float64("mu", 0.2, "fraction of malicious peers in the universe")
		d         = fs.Float64("d", 0.9, "identifier survival probability per time unit")
		k         = fs.Int("k", 1, "protocol_k randomization amount")
		nu        = fs.Float64("nu", 0.1, "Rule 1 threshold ν")
		events    = fs.Int("events", 50000, "churn events to simulate")
		clusters  = fs.Int("clusters", 3, "initial topology: 2^clusters clusters")
		mode      = fs.String("mode", "model", "churn fidelity: model or realtime")
		consensus = fs.Bool("consensus", false, "run real Byzantine agreements for maintenance (slow)")
		seed      = fs.Int64("seed", 1, "deterministic seed")
		interval  = fs.Int("interval", 5000, "events between progress reports")
		replicas  = fs.Int("replicas", 1, "independent replicated simulations (seeds derived from -seed)")
		workers   = fs.Int("workers", 0, "worker pool width for -replicas (0 = one per CPU)")
		peers     = fs.Int("peers", 0, "size the bootstrap for this target population (overrides -clusters)")
		fast      = fs.Bool("fast", false, "hash-derived identifiers instead of ed25519 certificates")
		strategy  = fs.String("strategy", "paper", "adversary strategy: paper, norule1 or passive")
		cpuprof   = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprof   = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	strat, err := adversary.ParseStrategy(*strategy)
	if err != nil {
		return err
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "overlaysim: memprofile:", err)
			}
		}()
	}
	cfg := overlaynet.Config{
		Params:           core.Params{C: 7, Delta: 7, Mu: *mu, D: *d, K: *k, Nu: *nu},
		InitialLabelBits: *clusters,
		UseConsensus:     *consensus,
		FastIdentity:     *fast,
		Strategy:         strat,
		Seed:             *seed,
	}
	if *peers > 0 {
		bits := overlaynet.LabelBitsForPopulation(*peers, cfg.Params.C, cfg.Params.Delta)
		if bits == 0 {
			bits = -1 // a single root cluster
		}
		cfg.InitialLabelBits = bits
	}
	switch *mode {
	case "model":
		cfg.Mode = overlaynet.ModelFidelity
	case "realtime":
		cfg.Mode = overlaynet.RealTime
	default:
		return fmt.Errorf("unknown -mode %q (want model or realtime)", *mode)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be ≥ 1, got %d", *replicas)
	}
	if *replicas > 1 {
		return runReplicated(cfg, *events, *replicas, *workers)
	}
	net, err := overlaynet.New(cfg)
	if err != nil {
		return err
	}
	eff := net.Config()
	fmt.Printf("overlay: %d clusters, %v, L=%.2f, mode=%s, consensus=%v\n",
		net.Snapshot().Clusters, eff.Params, eff.Lifetime, *mode, *consensus)
	fmt.Printf("%-10s %-9s %-9s %-10s %-8s %-7s %-7s %s\n",
		"events", "clusters", "polluted", "fraction", "peers", "splits", "merges", "discards")
	if *interval < 1 {
		*interval = *events
	}
	done := 0
	for done < *events {
		step := *interval
		if done+step > *events {
			step = *events - done
		}
		if err := net.Run(step); err != nil {
			return err
		}
		done += step
		snap := net.Snapshot()
		m := net.Metrics()
		fmt.Printf("%-10d %-9d %-9d %-10.4f %-8d %-7d %-7d %d\n",
			done, snap.Clusters, snap.PollutedClusters, snap.PollutedFraction,
			snap.Peers, m.Splits, m.Merges, m.DiscardedJoins)
	}
	m := net.Metrics()
	fmt.Printf("\noperation census after %d events:\n", m.Events)
	fmt.Printf("  joins                 %d (discarded by Rule 2: %d)\n", m.Joins, m.DiscardedJoins)
	fmt.Printf("  leaves                %d (refused by adversary: %d, Rule 1 voluntary: %d)\n",
		m.Leaves, m.RefusedLeaves, m.VoluntaryLeaves)
	fmt.Printf("  expiry churn          %d (Property 1 forced departures)\n", m.ExpiryLeaves)
	fmt.Printf("  splits                %d (deferred: %d)\n", m.Splits, m.DeferredSplits)
	fmt.Printf("  merges                %d (deferred: %d)\n", m.Merges, m.DeferredMerges)
	fmt.Printf("  core underflows       %d\n", m.CoreUnderflows)
	fmt.Printf("  consensus runs        %d\n", m.ConsensusRuns)
	return nil
}

// replicaOutcome is the result of one replicated simulation.
type replicaOutcome struct {
	seed     int64
	polluted float64
	peak     float64
	clusters int
	splits   int64
	merges   int64
}

// runReplicated executes `replicas` independent overlays in parallel.
// Replica i runs with seed base+i, so the whole ensemble is reproducible
// from the base seed alone, for any pool width.
func runReplicated(cfg overlaynet.Config, events, replicas, workers int) error {
	outcomes := make([]replicaOutcome, replicas)
	pool := engine.New(workers)
	err := pool.Run(context.Background(), replicas, func(i int) error {
		rcfg := cfg
		rcfg.Seed = cfg.Seed + int64(i)
		net, err := overlaynet.New(rcfg)
		if err != nil {
			return err
		}
		// Sample pollution at ~20 checkpoints to catch the peak.
		step := events / 20
		if step == 0 {
			step = events
		}
		var peak float64
		for done := 0; done < events; done += step {
			n := step
			if done+n > events {
				n = events - done
			}
			if err := net.Run(n); err != nil {
				return err
			}
			if frac := net.Snapshot().PollutedFraction; frac > peak {
				peak = frac
			}
		}
		snap := net.Snapshot()
		m := net.Metrics()
		outcomes[i] = replicaOutcome{
			seed:     rcfg.Seed,
			polluted: snap.PollutedFraction,
			peak:     peak,
			clusters: snap.Clusters,
			splits:   m.Splits,
			merges:   m.Merges,
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("replicated overlay: %d replicas × %d events, %v, workers=%d\n",
		replicas, events, cfg.Params, pool.Workers())
	fmt.Printf("%-8s %-10s %-10s %-9s %-7s %s\n",
		"seed", "polluted", "peak", "clusters", "splits", "merges")
	var final, peaks stats.Running
	for _, o := range outcomes {
		fmt.Printf("%-8d %-10.4f %-10.4f %-9d %-7d %d\n",
			o.seed, o.polluted, o.peak, o.clusters, o.splits, o.merges)
		final.Observe(o.polluted)
		peaks.Observe(o.peak)
	}
	fmt.Printf("\nfinal polluted fraction: %s\n", final.String())
	fmt.Printf("peak polluted fraction:  %s\n", peaks.String())
	return nil
}
